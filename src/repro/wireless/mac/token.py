"""Baseline token-passing MAC [7].

A token circulates over the WIs of a channel in a fixed sequence; only the
token holder may transmit, and "only whole packets are transmitted to other
WIs, to maintain the integrity of the wormhole switching" [11].  The holder
therefore waits until an entire packet is buffered at its WI before starting
a transmission, and releases the token after the tail flit (or immediately,
after a token-pass latency, when it has nothing eligible to send).

The whole-packet rule is what drives the WI buffer requirement (and hence
static power) up — the motivation for the control-packet MAC the paper
proposes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...energy.technology import WIRELESS_ENERGY_PJ_PER_BIT
from .base import MacProtocol

#: Size of the circulating token [bits]; only used for energy accounting.
TOKEN_BITS = 8


class TokenMac(MacProtocol):
    """Token-passing channel arbitration with whole-packet transmissions."""

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter,
        token_pass_latency_cycles: int = 2,
        max_hold_cycles: int = 4096,
    ) -> None:
        super().__init__(channel_id, wi_switch_ids, adapter)
        if token_pass_latency_cycles < 0:
            raise ValueError("token_pass_latency_cycles must be non-negative")
        if max_hold_cycles <= 0:
            raise ValueError("max_hold_cycles must be positive")
        self._token_pass_latency = token_pass_latency_cycles
        self._max_hold_cycles = max_hold_cycles
        self._holder_index = 0
        self._passing_until = 0
        self._active_packet: Optional[int] = None
        self._active_destination: Optional[int] = None
        self._hold_since = 0

    # ------------------------------------------------------------------
    # MacProtocol interface.
    # ------------------------------------------------------------------

    def current_transmitter(self) -> Optional[int]:
        """The token holder (even while idle — the token is with it)."""
        if self._passing_until > 0:
            return None
        return self.wi_switch_ids[self._holder_index]

    # Token MAC receivers are always awake (the base-class default of
    # ``is_intended_receiver`` already says "everyone listens").

    def update(self, cycle: int) -> None:
        """Pass the token when the holder has nothing eligible to transmit."""
        if self._passing_until > 0:
            if cycle < self._passing_until:
                return
            self._passing_until = 0
            self._hold_since = cycle
        if self._active_packet is not None:
            if cycle - self._hold_since > self._max_hold_cycles:
                # Safety valve: a stalled destination cannot capture the
                # channel forever.
                self.stats.forced_releases += 1
                self._active_packet = None
                self._active_destination = None
                self._pass_token(cycle)
            return
        holder = self.wi_switch_ids[self._holder_index]
        if self._eligible_packet(holder) is None:
            self.stats.idle_grant_cycles += 1
            self._pass_token(cycle)

    def grants(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Only the holder transmits, and only whole buffered packets."""
        if self._passing_until > 0:
            return False
        if wi_switch_id != self.wi_switch_ids[self._holder_index]:
            return False
        if self._active_packet is not None:
            return packet_id == self._active_packet
        if not is_head:
            return False
        eligible = self._eligible_packet(wi_switch_id)
        return eligible == packet_id

    def notify_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Track the in-flight packet; release the token after the tail."""
        super().notify_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
        if self._active_packet is None:
            self._active_packet = packet_id
            self._active_destination = dst_switch
            self._hold_since = cycle
            self.stats.grants += 1
        if is_tail:
            self._active_packet = None
            self._active_destination = None
            self._pass_token(cycle)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _eligible_packet(self, wi_switch_id: int) -> Optional[int]:
        """Packet id of a fully-buffered packet the destination can accept.

        One hot scan of the WI's pending traffic; entry order equals the
        historical object-path order (ascending VC ordinal), so the first
        eligible packet is the same one the legacy path picked.
        """
        plane = self.plane
        count = plane.scan_pending(wi_switch_id)
        if not count:
            return None
        pend_head = plane.pend_head
        pend_buffered = plane.pend_buffered
        pend_length = plane.pend_length
        pend_dst = plane.pend_dst
        pend_pid = plane.pend_pid
        for row in range(count):
            if not pend_head[row]:
                continue
            if pend_buffered[row] < pend_length[row]:
                continue
            if plane.acceptable_flits(pend_dst[row], pend_pid[row], True) <= 0:
                continue
            return pend_pid[row]
        return None

    def _pass_token(self, cycle: int) -> None:
        self._holder_index = self.next_wi_index(self._holder_index)
        self._passing_until = cycle + max(1, self._token_pass_latency)
        self.stats.token_passes += 1
        self.plane.record_control_energy(
            TOKEN_BITS * WIRELESS_ENERGY_PJ_PER_BIT, self.channel_id
        )
