"""Wireless interface (WI) transceiver model.

The paper adopts the low-power non-coherent OOK transceiver of [6]:
2.3 pJ/bit at a sustained 16 Gb/s, 0.3 mm^2 in TSMC 65 nm, BER below 1e-15.
The proposed control-packet MAC additionally power-gates receivers that are
not addressed by the current transmission ("sleepy transceivers" [17]).

This module models one WI's operating state (transmitting / receiving /
idle / asleep) and integrates its energy over a simulation run; the MAC
drives the state transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..energy.technology import (
    WIRELESS_DATA_RATE_GBPS,
    WIRELESS_ENERGY_PJ_PER_BIT,
    WIRELESS_IDLE_POWER_MW,
    WIRELESS_SLEEP_POWER_MW,
    WIRELESS_TARGET_BER,
    WIRELESS_TRANSCEIVER_AREA_MM2,
    CYCLE_TIME_S,
)


class TransceiverState(str, Enum):
    """Operating state of a WI transceiver."""

    IDLE = "idle"
    TRANSMITTING = "transmitting"
    RECEIVING = "receiving"
    SLEEPING = "sleeping"


@dataclass(frozen=True)
class TransceiverSpec:
    """Published macro-parameters of the OOK transceiver [6]."""

    data_rate_gbps: float = WIRELESS_DATA_RATE_GBPS
    energy_pj_per_bit: float = WIRELESS_ENERGY_PJ_PER_BIT
    area_mm2: float = WIRELESS_TRANSCEIVER_AREA_MM2
    target_ber: float = WIRELESS_TARGET_BER
    idle_power_mw: float = WIRELESS_IDLE_POWER_MW
    sleep_power_mw: float = WIRELESS_SLEEP_POWER_MW
    modulation: str = "OOK"

    def transfer_energy_pj(self, bits: int) -> float:
        """Dynamic energy of transferring ``bits`` over the air [pJ]."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits * self.energy_pj_per_bit

    def transfer_time_s(self, bits: int) -> float:
        """Serialisation time of ``bits`` at the sustained data rate [s]."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits / (self.data_rate_gbps * 1e9)


@dataclass
class Transceiver:
    """One WI's transceiver with state tracking and energy integration."""

    wi_id: int
    spec: TransceiverSpec = field(default_factory=TransceiverSpec)
    power_gating: bool = True
    state: TransceiverState = TransceiverState.IDLE
    cycles_in_state: dict = field(default_factory=dict)
    dynamic_energy_pj: float = 0.0

    def set_state(self, state: TransceiverState) -> None:
        """Move to a new operating state.

        Power gating must be enabled for the SLEEPING state to be entered;
        without it (token MAC baseline) a sleep request degrades to IDLE.
        """
        if state == TransceiverState.SLEEPING and not self.power_gating:
            state = TransceiverState.IDLE
        self.state = state

    def tick(self, cycles: int = 1) -> None:
        """Account ``cycles`` clock cycles spent in the current state."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cycles_in_state[self.state] = (
            self.cycles_in_state.get(self.state, 0) + cycles
        )

    def record_transfer(self, bits: int) -> float:
        """Account the dynamic energy of a transfer and return it [pJ]."""
        energy = self.spec.transfer_energy_pj(bits)
        self.dynamic_energy_pj += energy
        return energy

    def static_energy_pj(self, cycle_time_s: float = CYCLE_TIME_S) -> float:
        """Static energy from the per-state residency counters [pJ]."""
        idle_like = (
            self.cycles_in_state.get(TransceiverState.IDLE, 0)
            + self.cycles_in_state.get(TransceiverState.TRANSMITTING, 0)
            + self.cycles_in_state.get(TransceiverState.RECEIVING, 0)
        )
        sleeping = self.cycles_in_state.get(TransceiverState.SLEEPING, 0)
        idle_energy = self.spec.idle_power_mw * 1e-3 * idle_like * cycle_time_s * 1e12
        sleep_energy = self.spec.sleep_power_mw * 1e-3 * sleeping * cycle_time_s * 1e12
        return idle_energy + sleep_energy

    @property
    def total_cycles(self) -> int:
        """Total cycles accounted so far."""
        return sum(self.cycles_in_state.values())

    def sleep_fraction(self) -> float:
        """Fraction of accounted cycles spent power-gated."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.cycles_in_state.get(TransceiverState.SLEEPING, 0) / total
