"""Shared fixtures for the test suite.

The fixtures build deliberately small systems (a few cores per chip, short
packets, short runs) so the whole suite exercises every code path of the
cycle-accurate simulator in seconds.
"""

from __future__ import annotations

import pytest

from repro.core.architectures import build_system
from repro.core.config import Architecture, SystemConfig
from repro.noc.config import NetworkConfig, WirelessConfig
from repro.noc.engine import SimulationConfig


def small_network_config(mac: str = "control_packet", packet_length: int = 8) -> NetworkConfig:
    """A small-but-complete NoC configuration for fast tests."""
    return NetworkConfig(
        virtual_channels=4,
        buffer_depth_flits=4,
        packet_length_flits=packet_length,
        wireless=WirelessConfig(mac=mac, num_channels=2),
    )


def small_system_config(
    architecture: Architecture = Architecture.WIRELESS,
    num_chips: int = 2,
    cores_per_chip: int = 4,
    num_memory_stacks: int = 2,
    mac: str = "control_packet",
    packet_length: int = 8,
) -> SystemConfig:
    """A 2-chip, 2-stack system that still exercises every architecture."""
    return SystemConfig(
        architecture=architecture,
        num_chips=num_chips,
        cores_per_chip=cores_per_chip,
        num_memory_stacks=num_memory_stacks,
        vaults_per_stack=2,
        cores_per_wi=4,
        total_processing_area_mm2=100.0,
        network=small_network_config(mac=mac, packet_length=packet_length),
    )


@pytest.fixture
def small_wireless_system():
    """A built small wireless system."""
    return build_system(small_system_config(Architecture.WIRELESS))


@pytest.fixture
def small_interposer_system():
    """A built small interposer system."""
    return build_system(small_system_config(Architecture.INTERPOSER))


@pytest.fixture
def small_substrate_system():
    """A built small substrate system."""
    return build_system(small_system_config(Architecture.SUBSTRATE))


@pytest.fixture
def short_simulation_config():
    """A short simulation long enough for packets to traverse the system."""
    return SimulationConfig(cycles=400, warmup_cycles=100)
