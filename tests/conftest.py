"""Shared fixtures for the test suite.

The configuration builders live in :mod:`repro.testing` so test modules can
import them unambiguously (``from repro.testing import small_system_config``)
— a bare ``from conftest import ...`` is ambiguous when both ``tests/`` and
``benchmarks/`` have a ``conftest.py``.  This module only defines fixtures.
"""

from __future__ import annotations

import pytest

from repro.core.architectures import build_system
from repro.core.config import Architecture
from repro.noc.engine import SimulationConfig
from repro.testing import small_network_config, small_system_config  # noqa: F401


@pytest.fixture
def small_wireless_system():
    """A built small wireless system."""
    return build_system(small_system_config(Architecture.WIRELESS))


@pytest.fixture
def small_interposer_system():
    """A built small interposer system."""
    return build_system(small_system_config(Architecture.INTERPOSER))


@pytest.fixture
def small_substrate_system():
    """A built small substrate system."""
    return build_system(small_system_config(Architecture.SUBSTRATE))


@pytest.fixture
def short_simulation_config():
    """A short simulation long enough for packets to traverse the system."""
    return SimulationConfig(cycles=400, warmup_cycles=100)
