"""The ``repro.api`` facade and the ``experiments.runner`` move.

The PR-8 contracts:

* **Facade parity** — :func:`repro.api.run` / :func:`~repro.api.sweep`
  produce exactly what a directly constructed
  :class:`~repro.parallel.runner.ExperimentRunner` produces, and
  :func:`~repro.api.make_runner`'s defaults match a bare
  ``ExperimentRunner()`` (no cache unless a directory is given).
* **Scenario forms** — :func:`~repro.api.resolve_scenario` accepts a
  parsed spec, a raw mapping, a built-in name and a document path, with
  a working fidelity override; :func:`~repro.api.compile_scenario` runs
  nothing and agrees with the scenario layer.
* **Deprecation shim** — ``repro.experiments.runner`` still imports (one
  :class:`DeprecationWarning`, warned once) and re-exports the *same*
  objects now living in ``repro.parallel.runner``.
* **CLI routing** — ``--service`` swaps in a
  :class:`~repro.service.client.ServiceRunner` and rejects
  ``--profile``; without it the CLI builds runners through the facade.
"""

from __future__ import annotations

import subprocess
import sys
import json
from dataclasses import dataclass
from pathlib import Path

import pytest

import repro
from repro import api
from repro.core.config import Architecture
from repro.parallel.runner import ExperimentRunner, execute_task, uniform_task
from repro.scenario import ScenarioSpec, builtin_scenario_names
from repro.testing import small_system_config


@dataclass(frozen=True)
class _Fidelity:
    cycles: int = 200
    warmup_cycles: int = 50
    seed: int = 5


def _task(load, **kwargs):
    return uniform_task(
        small_system_config(Architecture.WIRELESS), _Fidelity(), load=load, **kwargs
    )


_DOC = {
    "name": "api-doc",
    "fidelity": "fast",
    "systems": [{"architecture": "wireless"}],
    "traffic": {"kind": "synthetic", "loads": [0.01, 0.02]},
}


# ----------------------------------------------------------------------
# Facade execution parity.
# ----------------------------------------------------------------------


class TestFacadeParity:
    def test_run_matches_execute_task(self):
        task = _task(0.02)
        assert api.run(task).as_dict() == execute_task(task)

    def test_sweep_matches_direct_runner(self):
        tasks = [_task(load) for load in (0.01, 0.02)]
        direct = ExperimentRunner().run(tasks)
        via_api = api.sweep(tasks)
        assert {t: s.as_dict() for t, s in via_api.items()} == {
            t: s.as_dict() for t, s in direct.items()
        }

    def test_sweep_rejects_runner_plus_kwargs(self):
        with pytest.raises(TypeError, match="not both"):
            api.sweep([_task(0.01)], runner=ExperimentRunner(), jobs=2)

    def test_sweep_accepts_preconfigured_runner(self, tmp_path):
        runner = api.make_runner(cache_dir=str(tmp_path))
        tasks = [_task(0.01)]
        api.sweep(tasks, runner=runner)
        api.sweep(tasks, runner=runner)
        assert runner.tasks_executed == 1
        assert runner.cache_hits == 1

    def test_make_runner_defaults_match_bare_runner(self, tmp_path):
        assert api.make_runner().cache is None  # uncached, like ExperimentRunner()
        assert api.make_runner(cache_dir=str(tmp_path)).cache is not None
        assert api.make_runner(cache_dir=str(tmp_path), use_cache=False).cache is None
        assert api.make_runner(cache_dir=str(tmp_path), profile=True).cache is None

    def test_build_simulator_is_not_run(self):
        simulator = api.build_simulator(_task(0.02))
        # Fully wired but unexecuted: running it yields the same summary.
        result = simulator.run()
        assert result.packets_delivered > 0

    def test_run_with_checkpointing_round_trips(self, tmp_path):
        task = _task(0.02)
        baseline = api.run(task)
        resumed = api.run(
            task, checkpoint_every=50, checkpoint_dir=str(tmp_path)
        )
        assert resumed.as_dict() == baseline.as_dict()


# ----------------------------------------------------------------------
# Scenario forms.
# ----------------------------------------------------------------------


class TestScenarioForms:
    def test_builtin_name(self):
        spec = api.resolve_scenario("fig2", fidelity="fast")
        assert isinstance(spec, ScenarioSpec)
        assert spec.fidelity_level == "fast"
        tasks = api.compile_scenario("fig2", fidelity="fast")
        assert tasks and all(t.cache_key() for t in tasks)

    def test_every_builtin_compiles(self):
        for name in builtin_scenario_names():
            assert api.compile_scenario(name, fidelity="fast")

    def test_mapping_and_path_forms_agree(self, tmp_path):
        from_mapping = api.compile_scenario(_DOC)
        document = tmp_path / "scenario.json"
        document.write_text(json.dumps(_DOC))
        from_path = api.compile_scenario(document)
        assert from_mapping == from_path
        assert len(from_mapping) == 2  # one per load point

    def test_spec_pass_through_with_fidelity_override(self):
        spec = api.resolve_scenario(_DOC)
        assert api.resolve_scenario(spec) is spec
        overridden = api.resolve_scenario(spec, fidelity="smoke")
        assert overridden.fidelity_level == "smoke"

    def test_unknown_source_fails_loudly(self, tmp_path):
        with pytest.raises(Exception):
            api.resolve_scenario(str(tmp_path / "absent.json"))


# ----------------------------------------------------------------------
# The deprecation shim.
# ----------------------------------------------------------------------


class TestRunnerShim:
    def test_shim_reexports_the_same_objects(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.experiments import runner as shim
        from repro.parallel import runner as home

        assert shim.ExperimentRunner is home.ExperimentRunner
        assert shim.SimulationTask is home.SimulationTask
        assert shim.execute_task is home.execute_task
        assert home.ExperimentRunner.__module__ == "repro.parallel.runner"

    def test_shim_warns_exactly_once(self):
        """Run in a fresh interpreter: the warning fires on first import only."""
        script = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.experiments.runner\n"
            "    import repro.experiments.runner  # cached: no second warning\n"
            "    from repro.experiments import runner  # lazy attr: still cached\n"
            "relevant = [w for w in caught\n"
            "            if issubclass(w.category, DeprecationWarning)\n"
            "            and 'repro.experiments.runner' in str(w.message)]\n"
            "print(len(relevant))\n"
        )
        src = str(Path(repro.__file__).resolve().parents[1])
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        assert output.stdout.strip() == "1"

    def test_experiments_package_does_not_import_shim_eagerly(self):
        """``import repro.experiments`` must stay deprecation-silent."""
        script = (
            "import warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "import repro.experiments\n"
            "import repro.api\n"
            "print('clean')\n"
        )
        src = str(Path(repro.__file__).resolve().parents[1])
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        assert output.stdout.strip() == "clean"


# ----------------------------------------------------------------------
# CLI routing.
# ----------------------------------------------------------------------


class TestCliRouting:
    def _args(self, *argv):
        from repro.experiments.cli import build_parser

        return build_parser().parse_args(["fig2", *argv])

    def test_service_flag_builds_service_runner(self):
        from repro.experiments.cli import runner_from_args
        from repro.service.client import ServiceRunner

        runner = runner_from_args(self._args("--service", "/tmp/svc.sock"))
        assert isinstance(runner, ServiceRunner)
        assert runner.socket_path == "/tmp/svc.sock"

    def test_service_flag_rejects_profile(self):
        from repro.experiments.cli import runner_from_args

        with pytest.raises(ValueError, match="--profile"):
            runner_from_args(
                self._args("--service", "/tmp/svc.sock", "--profile")
            )

    def test_default_path_is_an_experiment_runner(self):
        from repro.experiments.cli import runner_from_args
        from repro.service.client import ServiceRunner

        runner = runner_from_args(self._args())
        assert isinstance(runner, ExperimentRunner)
        assert not isinstance(runner, ServiceRunner)
