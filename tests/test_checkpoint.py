"""Checkpoint/restore: bit-identical resume, engine policy, the store.

The PR-8 contracts:

* **Golden resume matrix** — for ≥ 2 architectures × {uniform, faulted},
  a run checkpointed every N cycles and resumed from *any* of its
  checkpoints produces a result payload bit-identical to the
  uninterrupted run.  The faulted runs place checkpoints after fault
  events fired, while affected packets are still draining, so the
  injector's event cursor and the recovery routing state round-trip too.
* **Pool growth** — the packet pool grows between checkpoints and the
  later (larger-capacity) snapshots still resume bit-identically.
* **Engine policy** — a scalar checkpoint resumes under either engine
  request; a vector checkpoint under an explicit scalar request raises
  :class:`CheckpointEngineMismatchError`, as does restoring a snapshot
  through the wrong ``KernelState`` class.
* **Store semantics** — atomic save/load round-trip, corrupt and
  version-mismatched files fail loudly via :func:`load_checkpoint` but
  read as "no checkpoint" through :class:`CheckpointStore`, and
  :func:`execute_task` resumes from a planted checkpoint and deletes it
  on completion.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace

import pytest

from repro.core.config import Architecture
from repro.faults import create_fault_plan
from repro.metrics.saturation import LoadPointSummary
from repro.noc.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointEngineMismatchError,
    CheckpointError,
    KernelCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.noc.kernel import KernelState
from repro.noc.vector import VectorKernelState
from repro.parallel.checkpoints import CheckpointStore
from repro.parallel.runner import execute_task, task_simulator, uniform_task
from repro.testing import small_system_config


@dataclass(frozen=True)
class _Fidelity:
    cycles: int = 400
    warmup_cycles: int = 100
    seed: int = 11


def _task(architecture, faults="none", cycles=400, load=0.05, seed=11):
    return uniform_task(
        small_system_config(architecture),
        _Fidelity(cycles=cycles, seed=seed),
        load=load,
        faults=faults,
        fault_rate=0.4 if faults != "none" else 0.0,
    )


def _payload(task, result):
    """Exactly the fingerprint :func:`execute_task` caches and serves."""
    return LoadPointSummary.from_result(task.load, result).as_dict()


def _checkpointed_run(task, every, engine="scalar"):
    """Run ``task`` once, collecting a checkpoint every ``every`` cycles."""
    checkpoints = []
    simulator = task_simulator(task, engine=engine)
    simulator.simulation_config = replace(
        simulator.simulation_config, checkpoint_every_cycles=every
    )
    simulator.checkpoint_sink = checkpoints.append
    result = simulator.run()
    return checkpoints, _payload(task, result)


def _resume(task, checkpoint, engine="scalar"):
    return _payload(task, task_simulator(task, engine=engine).run(resume_from=checkpoint))


# ----------------------------------------------------------------------
# Golden resume matrix: every checkpoint of every run resumes
# bit-identically, across architectures and fault modes.
# ----------------------------------------------------------------------


class TestGoldenResumeMatrix:
    @pytest.mark.parametrize(
        "architecture", (Architecture.SUBSTRATE, Architecture.WIRELESS)
    )
    @pytest.mark.parametrize("faults", ("none", "random-links"))
    def test_resume_from_every_checkpoint(self, architecture, faults):
        task = _task(architecture, faults=faults)
        baseline = _payload(task, task_simulator(task).run())
        checkpoints, checkpointed = _checkpointed_run(task, every=100)
        # Checkpointing itself must not perturb the run...
        assert checkpointed == baseline
        # ...and the final cycle is never checkpointed (the run is done).
        assert [c.cycle for c in checkpoints] == [99, 199, 299]
        for checkpoint in checkpoints:
            assert checkpoint.engine == "scalar"
            assert _resume(task, checkpoint) == baseline

    def test_faulted_checkpoints_land_mid_drain(self):
        """The faulted matrix rows really do snapshot during fault events.

        ``random-links`` schedules its failures mid-run; with checkpoints
        every 100 cycles, at least one checkpoint must fall at or after
        the first fault event — i.e. while recovery routing is active and
        committed packets are still draining over the failed links.
        """
        task = _task(Architecture.SUBSTRATE, faults="random-links")
        simulator = task_simulator(task)
        plan = create_fault_plan(
            task.faults,
            simulator.topology,
            fault_rate=task.fault_rate,
            seed=task.fault_plan_seed(),
            cycles=task.cycles,
        )
        assert plan.events, "fault_rate=0.4 must schedule at least one failure"
        first_event = min(event.at_cycle for event in plan.events)
        checkpoints, _ = _checkpointed_run(task, every=100)
        assert any(c.cycle >= first_event for c in checkpoints)

    def test_pool_grows_between_checkpoints(self, monkeypatch):
        """Later snapshots carry a grown pool and still resume exactly.

        The production growth chunk (256 records) exceeds what this tiny
        system ever holds live, so the chunk is shrunk to force several
        amortised-doubling growths mid-run; results are independent of
        pool capacity, so the baseline stays comparable.
        """
        monkeypatch.setattr("repro.noc.pool._GROWTH_CHUNK", 8)
        task = _task(Architecture.SUBSTRATE, load=0.15)
        baseline = _payload(task, task_simulator(task).run())
        checkpoints, _ = _checkpointed_run(task, every=100)
        capacities = [
            pickle.loads(c.payload).state.pool.capacity for c in checkpoints
        ]
        assert capacities[-1] > capacities[0]
        grown = next(
            c
            for c, capacity in zip(checkpoints, capacities)
            if capacity > capacities[0]
        )
        assert _resume(task, grown) == baseline


class TestWheelRoundTrip:
    """The vector engine's calendar wheel (PR 10) pickles mid-flight.

    A checkpoint lands at a cycle boundary, but flits already launched
    onto multi-cycle links are still in the wheel — pending deliveries
    spread over future slots.  Those snapshots must resume exactly: the
    wheel slot arrays, counts and the pending total all round-trip.
    """

    @staticmethod
    def _occupied_slots(checkpoint):
        state = pickle.loads(checkpoint.payload).state
        counts = [int(count) for count in state.wheel_count]
        assert sum(counts) == state.wheel_pending
        return [slot for slot, count in enumerate(counts) if count]

    def test_mid_flight_wheel_checkpoint_resumes_exactly(self):
        task = _task(Architecture.SUBSTRATE, load=0.08)
        baseline = _payload(task, task_simulator(task).run())
        baseline.pop("engine_used")
        checkpoints, _ = _checkpointed_run(task, every=100, engine="vector")
        in_flight = [c for c in checkpoints if len(self._occupied_slots(c)) >= 2]
        # The substrate's inter-chip links take several cycles, so under
        # this load some boundary must catch deliveries pending in at
        # least two distinct future slots — otherwise this test would
        # only cover an empty wheel and pass vacuously.
        assert in_flight, "no checkpoint caught the wheel mid-flight"
        for checkpoint in in_flight:
            resumed = _resume(task, checkpoint, engine="vector")
            assert resumed.pop("engine_used") == "vector"
            assert resumed == baseline


# ----------------------------------------------------------------------
# Engine policy.
# ----------------------------------------------------------------------


class TestEnginePolicy:
    def test_scalar_checkpoint_resumes_under_vector_request(self):
        task = _task(Architecture.SUBSTRATE)
        baseline = _payload(task, task_simulator(task).run())
        checkpoints, _ = _checkpointed_run(task, every=150)
        assert _resume(task, checkpoints[0], engine="vector") == baseline

    def test_vector_checkpoint_resumes_under_vector_request(self):
        task = _task(Architecture.SUBSTRATE)
        baseline = _payload(task, task_simulator(task).run())
        checkpoints, checkpointed = _checkpointed_run(task, every=150, engine="vector")
        # The engine_used stamp records which path actually ran; every
        # simulated quantity must still match the scalar baseline exactly.
        assert checkpointed.pop("engine_used") == "vector"
        assert baseline.pop("engine_used") == "scalar"
        assert checkpointed == baseline
        assert checkpoints[0].engine == "vector"
        resumed = _resume(task, checkpoints[0], engine="vector")
        assert resumed.pop("engine_used") == "vector"
        assert resumed == baseline

    def test_vector_checkpoint_rejected_by_scalar_request(self):
        task = _task(Architecture.SUBSTRATE)
        checkpoints, _ = _checkpointed_run(task, every=150, engine="vector")
        with pytest.raises(CheckpointEngineMismatchError):
            _resume(task, checkpoints[0], engine="scalar")

    def test_state_restore_rejects_wrong_class(self):
        task = _task(Architecture.SUBSTRATE, cycles=200)
        scalar_kernel = pickle.loads(_checkpointed_run(task, every=100)[0][0].payload)
        vector_kernel = pickle.loads(
            _checkpointed_run(task, every=100, engine="vector")[0][0].payload
        )
        scalar_bytes = scalar_kernel.state.snapshot()
        vector_bytes = vector_kernel.state.snapshot()
        assert isinstance(KernelState.restore(scalar_bytes), KernelState)
        assert isinstance(VectorKernelState.restore(vector_bytes), VectorKernelState)
        with pytest.raises(CheckpointEngineMismatchError):
            KernelState.restore(vector_bytes)
        with pytest.raises(CheckpointEngineMismatchError):
            VectorKernelState.restore(scalar_bytes)


# ----------------------------------------------------------------------
# On-disk format and the store.
# ----------------------------------------------------------------------


class TestCheckpointFiles:
    def _checkpoint(self):
        task = _task(Architecture.SUBSTRATE, cycles=200)
        return _checkpointed_run(task, every=100)[0][0]

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = self._checkpoint()
        path = tmp_path / "run.ckpt"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded == checkpoint

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_payload_type_raises(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps({"surprise": True}))
        with pytest.raises(CheckpointError, match="dict"):
            load_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path):
        stale = replace(self._checkpoint(), version=CHECKPOINT_SCHEMA_VERSION + 1)
        path = tmp_path / "run.ckpt"
        save_checkpoint(stale, path)
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_store_reads_damage_as_cold_start(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("missing") is None
        store.path_for("broken").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("broken").write_bytes(b"truncated")
        assert store.load("broken") is None
        checkpoint = self._checkpoint()
        store.save("good", checkpoint)
        assert store.load("good") == checkpoint
        assert store.keys() == ["broken", "good"]
        store.discard("good")
        store.discard("good")  # idempotent
        assert store.keys() == ["broken"]


class TestExecuteTaskResume:
    def test_resumes_planted_checkpoint_and_discards_it(self, tmp_path):
        task = _task(Architecture.WIRELESS, cycles=300)
        baseline = execute_task(task)
        checkpoints, _ = _checkpointed_run(task, every=100)
        store = CheckpointStore(tmp_path)
        key = task.cache_key()
        store.save(key, checkpoints[-1])
        payload = execute_task(
            task, checkpoint_every=100, checkpoint_dir=str(tmp_path)
        )
        assert payload == baseline
        assert not store.path_for(key).exists()

    def test_cold_starts_over_corrupt_checkpoint(self, tmp_path):
        task = _task(Architecture.WIRELESS, cycles=300)
        baseline = execute_task(task)
        store = CheckpointStore(tmp_path)
        key = task.cache_key()
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"damaged by a previous crash")
        payload = execute_task(
            task, checkpoint_every=100, checkpoint_dir=str(tmp_path)
        )
        assert payload == baseline
        assert not store.path_for(key).exists()
