"""Tests of the wire / switch / I/O / wireless energy models and accounting."""

import pytest

from repro.energy import (
    EnergyAccountant,
    SerialIoModel,
    SwitchPowerModel,
    WideIoModel,
    WireModel,
    WirelessEnergyModel,
    interposer_link_characteristics,
)
from repro.energy.technology import DEFAULT_TECHNOLOGY
from repro.noc.packet import Packet


def _packet():
    return Packet(
        packet_id=0,
        src_endpoint=0,
        dst_endpoint=1,
        src_switch=0,
        dst_switch=1,
        length_flits=4,
        generation_cycle=0,
        route=[0, 1],
    )


class TestWireModel:
    def test_energy_proportional_to_length(self):
        model = WireModel()
        short = model.characterize(1.0)
        long = model.characterize(4.0)
        assert long.energy_pj_per_flit == pytest.approx(4 * short.energy_pj_per_flit)

    def test_mesh_link_length(self):
        model = WireModel()
        assert model.mesh_link_length_mm(10.0, 4) == pytest.approx(2.5)

    def test_default_mesh_links_are_single_cycle(self):
        """The paper assumes single-cycle intra-chip links; a 2.5 mm hop is."""
        model = WireModel()
        assert model.is_single_cycle(2.5)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            WireModel().characterize(-1.0)

    def test_interposer_link_energy_above_mesh_hop(self):
        mesh = WireModel().characterize(2.5)
        interposer = interposer_link_characteristics(3.0)
        assert interposer.energy_pj_per_flit > mesh.energy_pj_per_flit


class TestSwitchPowerModel:
    def test_reference_profile(self):
        profile = SwitchPowerModel().profile(5, 8, 16)
        assert profile.dynamic_energy_pj_per_flit == pytest.approx(
            DEFAULT_TECHNOLOGY.switch_dynamic_energy_pj_per_flit
        )
        assert profile.static_power_mw == pytest.approx(
            DEFAULT_TECHNOLOGY.switch_static_power_mw, rel=0.01
        )

    def test_bigger_buffers_cost_more_static_power(self):
        model = SwitchPowerModel()
        small = model.profile(5, 8, 16)
        big = model.profile(5, 8, 64)
        assert big.static_power_mw > small.static_power_mw

    def test_static_energy_scales_with_cycles(self):
        profile = SwitchPowerModel().profile(5, 8, 16)
        one = profile.static_energy_pj(1000, 0.4e-9)
        two = profile.static_energy_pj(2000, 0.4e-9)
        assert two == pytest.approx(2 * one)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SwitchPowerModel().profile(0, 8, 16)
        with pytest.raises(ValueError):
            SwitchPowerModel().traversal_energy_pj(-1)


class TestIoModels:
    def test_serial_io_figures(self):
        io = SerialIoModel().characterize()
        assert io.energy_pj_per_flit == pytest.approx(5.0 * 32)
        assert io.cycles_per_flit == 6
        assert io.rate_gbps == pytest.approx(15.0)

    def test_serial_io_lane_bonding(self):
        bonded = SerialIoModel(lanes=4).characterize()
        assert bonded.rate_gbps == pytest.approx(60.0)
        assert bonded.cycles_per_flit < SerialIoModel().characterize().cycles_per_flit

    def test_wide_io_figures(self):
        io = WideIoModel().characterize()
        assert io.energy_pj_per_flit == pytest.approx(6.5 * 32)
        assert io.cycles_per_flit == 1
        assert io.rate_gbps == pytest.approx(128.0)

    def test_rejects_invalid_lanes(self):
        with pytest.raises(ValueError):
            SerialIoModel(lanes=0)


class TestWirelessEnergyModel:
    def test_per_flit_energy(self):
        model = WirelessEnergyModel()
        assert model.profile().energy_pj_per_flit == pytest.approx(2.3 * 32)
        assert model.hop_energy_pj(10) == pytest.approx(10 * 2.3 * 32)

    def test_sleep_saves_idle_energy(self):
        model = WirelessEnergyModel()
        awake = model.idle_energy_pj(1000, asleep=False)
        asleep = model.idle_energy_pj(1000, asleep=True)
        assert asleep < awake

    def test_control_packet_energy(self):
        model = WirelessEnergyModel()
        assert model.control_packet_energy_pj(96) == pytest.approx(96 * 2.3)

    def test_rejects_negative_inputs(self):
        model = WirelessEnergyModel()
        with pytest.raises(ValueError):
            model.hop_energy_pj(-1)
        with pytest.raises(ValueError):
            model.idle_energy_pj(-5, asleep=True)


class TestEnergyAccountant:
    def test_dynamic_attribution(self):
        accountant = EnergyAccountant()
        packet = _packet()
        accountant.record_switch_traversal(packet, 1.0)
        accountant.record_link_traversal(packet, 16.0, wireless=False)
        accountant.record_link_traversal(packet, 73.6, wireless=True)
        assert packet.energy_pj == pytest.approx(90.6)
        assert accountant.breakdown.switch_dynamic_pj == pytest.approx(1.0)
        assert accountant.breakdown.link_pj == pytest.approx(16.0)
        assert accountant.breakdown.wireless_pj == pytest.approx(73.6)
        assert accountant.breakdown.dynamic_pj == pytest.approx(90.6)

    def test_static_energy_recording(self):
        accountant = EnergyAccountant()
        accountant.record_static(1000, total_switch_static_mw=10.0)
        assert accountant.breakdown.switch_static_pj > 0
        accountant.add_transceiver_static_energy(500.0)
        assert accountant.breakdown.transceiver_static_pj == pytest.approx(500.0)

    def test_average_packet_energy_with_and_without_static(self):
        with_static = EnergyAccountant(include_static=True)
        with_static.record_static(100, total_switch_static_mw=10.0)
        base = [100.0, 200.0]
        assert with_static.average_packet_energy_pj(base) > 150.0
        without = EnergyAccountant(include_static=False)
        without.record_static(100, total_switch_static_mw=10.0)
        assert without.average_packet_energy_pj(base) == pytest.approx(150.0)

    def test_mac_control_energy_not_attributed_to_packets(self):
        accountant = EnergyAccountant()
        accountant.record_mac_control(50.0)
        assert accountant.breakdown.mac_control_pj == pytest.approx(50.0)
        assert accountant.breakdown.dynamic_pj == pytest.approx(50.0)

    def test_breakdown_as_dict(self):
        accountant = EnergyAccountant()
        d = accountant.breakdown.as_dict()
        assert set(d) >= {"dynamic_pj", "static_pj", "total_pj"}
