"""Differential tests for the array-backed send/eject epilogue state.

PR 10 replaced the vector engine's per-event bookkeeping structures —
the ``(port, pid) -> gid`` owner dict, the ``gid -> (upstream, out)``
reverse-claim dict, and the ``cycle -> [(target, flit)]`` arrivals dict
— with flat claim-index lists and a calendar-wheel of preallocated
arrays, applied once per cycle by a bulk epilogue.  The fingerprint
matrices prove end-to-end parity; the tests here pin the *state machine*
itself: a shadow subclass re-derives the old dict model transition by
transition during real runs and asserts the array state stays exactly
equivalent every cycle, across random architecture x load x seed x
lane-count draws (hypothesis).  The wheel's mid-flight checkpoint
round-trip lives in ``tests/test_checkpoint.py`` with the rest of the
checkpoint matrix.
"""

from __future__ import annotations

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.noc.lanes as lanes_module
import repro.noc.vector as vector_module
from repro.noc.lanes import LaneBatchedState, run_batched
from repro.noc.vector import VectorKernelState
from repro.traffic.rng import lane_seeds

from test_kernel import ARCHITECTURES, result_fingerprint, uniform_factory
from test_lane_batch import WIRED, build_lane, solo_scalar

#: Shadow states constructed since the last :func:`_shadow_patched` entry
#: (one per solo run, one per batch).
_CAPTURED = []


class _ShadowDictModel:
    """Mixin that re-derives the pre-PR-10 dict model alongside the arrays.

    Each overridden hook first applies the old engine's transition to
    shadow dicts — ``shadow_owner``/``shadow_rev``/``shadow_arrivals``,
    maintained exactly as the dict-backed ``_send``/``_eject_vec`` did —
    then delegates to the real implementation.  Once per cycle, after the
    bulk epilogue, :meth:`_shadow_verify` asserts the array-backed state
    is equivalent to the dict model; arrival deliveries are compared
    slot-by-slot in :meth:`process_arrivals`.
    """

    def _shadow_init(self) -> None:
        self.shadow_owner = {}
        self.shadow_rev = {}
        self.shadow_arrivals = {}
        self.shadow_checked_cycles = 0
        _CAPTURED.append(self)

    def process_arrivals(self, cycle):
        slot = cycle % self.wheel_size
        count = self.wheel_count[slot]
        actual = sorted(
            zip(
                self.wheel_targets[slot][:count].tolist(),
                self.wheel_flits[slot][:count].tolist(),
            )
        )
        expected = sorted(self.shadow_arrivals.pop(cycle, []))
        assert actual == expected, f"wheel slot diverged at cycle {cycle}"
        super().process_arrivals(cycle)

    def _send(self, gid, target, flit, pid, is_tail, is_head, out_id, *rest):
        if is_tail:
            old_target = int(self.vc_tgt[gid])
            if old_target >= 0:
                self.shadow_rev.pop(old_target, None)
            self.shadow_owner.pop((self.port_of_l[gid], pid), None)
        if is_head:
            down_port = rest[0]
            self.shadow_owner[(down_port, pid)] = target
            if not is_tail:
                self.shadow_rev[target] = (gid, out_id)
        super()._send(gid, target, flit, pid, is_tail, is_head, out_id, *rest)

    def _eject_vec(self, gid, handle, is_tail, *rest):
        if is_tail:
            pid = self.alloc_l[gid]
            old_target = int(self.vc_tgt[gid])
            if old_target >= 0:  # pragma: no cover - ejection rows never claim
                self.shadow_rev.pop(old_target, None)
            self.shadow_owner.pop((self.port_of_l[gid], pid), None)
        super()._eject_vec(gid, handle, is_tail, *rest)

    def _apply_epilogue(
        self, cycle, ev_gid, ev_handle, ev_out, send_target, send_flit, *rest
    ):
        position = 0
        for out in ev_out:
            if out >= 0:
                due = cycle + int(self.out_latency[out])
                self.shadow_arrivals.setdefault(due, []).append(
                    (send_target[position], send_flit[position])
                )
                position += 1
        super()._apply_epilogue(
            cycle, ev_gid, ev_handle, ev_out, send_target, send_flit, *rest
        )
        self._shadow_verify(cycle)

    def _shadow_verify(self, cycle) -> None:
        rev_actual = {
            gid: (self.rev_vc_l[gid], self.rev_out_l[gid])
            for gid in range(len(self.rev_vc_l))
            if self.rev_vc_l[gid] >= 0
        }
        assert rev_actual == self.shadow_rev, f"rev index diverged at cycle {cycle}"
        for (port, pid), gid in self.shadow_owner.items():
            base = self.in_vc_base[port]
            owners = [
                vc
                for vc in range(base, base + self.port_nvcs[port])
                if self.alloc_l[vc] == pid
            ]
            # The live owner scan over the port's VCs (what the array
            # engine runs instead of a dict lookup) must resolve to
            # exactly the gid the dict model tracked.
            assert owners == [gid], f"owner scan diverged at cycle {cycle}"
        pending = sum(len(entries) for entries in self.shadow_arrivals.values())
        assert self.wheel_pending == pending, f"wheel count diverged at cycle {cycle}"
        self.shadow_checked_cycles += 1


class _ShadowVectorState(_ShadowDictModel, VectorKernelState):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._shadow_init()


class _ShadowLaneState(_ShadowDictModel, LaneBatchedState):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._shadow_init()


@contextmanager
def _shadow_patched():
    """Swap the shadow classes in for one run; hypothesis-safe (no
    function-scoped monkeypatch fixture)."""
    original_vector = vector_module.VectorKernelState
    original_lanes = lanes_module.LaneBatchedState
    _CAPTURED.clear()
    vector_module.VectorKernelState = _ShadowVectorState
    lanes_module.LaneBatchedState = _ShadowLaneState
    try:
        yield
    finally:
        vector_module.VectorKernelState = original_vector
        lanes_module.LaneBatchedState = original_lanes


@settings(max_examples=10, deadline=None)
@given(
    arch=st.sampled_from(WIRED),
    load=st.floats(min_value=0.005, max_value=0.06),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cycles=st.integers(min_value=80, max_value=240),
)
def test_property_solo_arrays_match_dict_model(arch, load, seed, cycles):
    """Random solo runs: array state == dict model, and the shadowed run's
    fingerprint still matches the scalar reference."""
    config = ARCHITECTURES[arch]()
    factory = uniform_factory(rate=load, seed=seed)
    with _shadow_patched():
        shadowed = build_lane(config, factory, cycles).run()
        [state] = _CAPTURED
    assert state.shadow_checked_cycles > 0, "run produced no send/eject events"
    scalar = solo_scalar(config, factory, cycles)
    assert result_fingerprint(shadowed) == result_fingerprint(scalar)


@settings(max_examples=6, deadline=None)
@given(
    arch=st.sampled_from(WIRED),
    load=st.floats(min_value=0.005, max_value=0.04),
    base_seed=st.integers(min_value=0, max_value=2**31 - 1),
    lanes=st.integers(min_value=1, max_value=4),
)
def test_property_batched_arrays_match_dict_model(arch, load, base_seed, lanes):
    """Random lane batches: the fused (lane-disjoint) state honours the
    same dict model, and every lane still matches its solo scalar twin."""
    config = ARCHITECTURES[arch]()
    factories = [
        uniform_factory(rate=load, seed=seed)
        for seed in lane_seeds(base_seed, lanes)
    ]
    with _shadow_patched():
        batched = run_batched(
            [build_lane(config, factory, cycles=160) for factory in factories]
        )
        [state] = _CAPTURED
    assert state.shadow_checked_cycles > 0, "batch produced no send/eject events"
    for factory, result in zip(factories, batched):
        solo = solo_scalar(config, factory, cycles=160)
        assert result_fingerprint(result) == result_fingerprint(solo)


def test_shadow_model_is_exercised():
    """Guard against vacuous property passes: a mid-load mesh run must
    drive real wormhole claims (rev entries), multi-VC ownership and
    multi-slot wheel traffic through the shadow checks."""
    config = ARCHITECTURES["substrate"]()
    factory = uniform_factory(rate=0.05, seed=7)
    with _shadow_patched():
        result = build_lane(config, factory, cycles=360).run()
        [state] = _CAPTURED
    assert state.shadow_checked_cycles > 50
    assert result.flit_hops > 500
