"""Fault injection, routing recovery, and resilience accounting.

Covers the contracts the fault subsystem promises:

* deterministic, connectivity-aware fault plans from the scenario registry;
* single-link failures provably reroute, with delivered-flit conservation
  (``flits_injected == flits_ejected_total + flits_residual_end +
  flits_dropped_unroutable``) on every run;
* transceiver death falls back to the remaining fabric;
* partitions are reported and every stranded packet is accounted — never a
  silent drop;
* recovery either verifies a deadlock-free forwarding state or reports the
  partition / dependency cycle (property-tested over single-link failures
  on meshes);
* faulted runs leave no trace on the shared topology/router (restore);
* the task schema (v3) carries faults through cache keys and the runner.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Architecture
from repro.core.framework import MultichipSimulation
from repro.parallel.runner import (
    TASK_SCHEMA_VERSION,
    ExperimentRunner,
    SimulationTask,
    uniform_task,
)
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    available_fault_scenarios,
    connected_components,
    create_fault_plan,
)
from repro.faults.recovery import recover_routing
from repro.faults.plan import FaultPlanError
from repro.noc.engine import SimulationConfig, Simulator
from repro.noc.fabric import WiredFabric
from repro.noc.flit import FlitType
from repro.routing import ShortestPathRouter
from repro.routing.validation import (
    find_channel_dependency_cycle,
    routes_are_deadlock_free,
)
from repro.testing import small_system_config
from repro.topology.graph import (
    EndpointKind,
    LinkKind,
    RegionKind,
    SwitchKind,
    TopologyGraph,
)
from repro.traffic.uniform import UniformRandomTraffic


def assert_flit_conservation(result) -> None:
    """Every injected flit is ejected, still in flight, or counted dropped."""
    assert result.flits_injected == (
        result.flits_ejected_total
        + result.flits_residual_end
        + result.flits_dropped_unroutable
    )


def mesh_graph(cols: int, rows: int, cores: bool = True) -> TopologyGraph:
    """A single-region cols x rows mesh with one core endpoint per switch."""
    graph = TopologyGraph()
    region = graph.add_region(
        kind=RegionKind.PROCESSOR_CHIP,
        name="chip0",
        mesh_cols=cols,
        mesh_rows=rows,
        origin_mm=(0.0, 0.0),
        edge_mm=10.0,
    )
    ids = {}
    for y in range(rows):
        for x in range(cols):
            switch = graph.add_switch(
                kind=SwitchKind.CORE,
                region_id=region.region_id,
                grid_x=x,
                grid_y=y,
                position_mm=(float(x), float(y)),
            )
            ids[(x, y)] = switch.switch_id
            if cores:
                graph.add_endpoint(EndpointKind.CORE, switch.switch_id)
    for y in range(rows):
        for x in range(cols):
            if x + 1 < cols:
                graph.add_link(ids[(x, y)], ids[(x + 1, y)], LinkKind.MESH, 1.0)
            if y + 1 < rows:
                graph.add_link(ids[(x, y)], ids[(x, y + 1)], LinkKind.MESH, 1.0)
    return graph


# ----------------------------------------------------------------------
# Scenario registry and plans.
# ----------------------------------------------------------------------


def test_scenario_registry_lists_builtins():
    names = available_fault_scenarios()
    for expected in (
        "none",
        "random-links",
        "hub-transceiver-loss",
        "degraded-channel",
        "cascading",
    ):
        assert expected in names


@pytest.mark.parametrize("scenario", ["none", "random-links", "cascading"])
def test_plans_are_deterministic(small_substrate_system, scenario):
    topology = small_substrate_system.topology
    one = create_fault_plan(scenario, topology, fault_rate=0.4, seed=11, cycles=1000)
    two = create_fault_plan(scenario, topology, fault_rate=0.4, seed=11, cycles=1000)
    assert one == two
    if scenario != "none":
        other_seed = create_fault_plan(
            scenario, topology, fault_rate=0.4, seed=12, cycles=1000
        )
        assert one != other_seed


def test_zero_rate_plans_are_empty(small_wireless_system):
    topology = small_wireless_system.topology
    for scenario in available_fault_scenarios():
        plan = create_fault_plan(scenario, topology, fault_rate=0.0, seed=3, cycles=500)
        assert plan.is_empty, scenario


def test_random_links_preserves_connectivity(small_interposer_system):
    topology = small_interposer_system.topology
    plan = create_fault_plan(
        "random-links", topology, fault_rate=0.9, seed=21, cycles=2000
    )
    assert not plan.is_empty
    try:
        for event in plan.events:
            assert event.kind is FaultKind.LINK_DOWN
            topology.disable_link(event.link_id)
        assert len(connected_components(topology)) == 1
    finally:
        topology.enable_all_links()


def test_event_validation():
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=FaultKind.LINK_DOWN)  # missing link_id
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=FaultKind.TRANSCEIVER_DOWN)  # missing switch_id
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=FaultKind.LINK_DEGRADE, link_id=0)  # degrades nothing
    with pytest.raises(FaultPlanError):
        FaultPlan(scenario="x", fault_rate=1.5, seed=0)


# ----------------------------------------------------------------------
# Fabric gates.
# ----------------------------------------------------------------------


def test_wired_fabric_gate_blocks_heads_only(small_substrate_system):
    from repro.noc.packet import Packet

    fabric = WiredFabric()
    packet = Packet(
        packet_id=0,
        src_endpoint=0,
        dst_endpoint=1,
        src_switch=0,
        dst_switch=1,
        length_flits=4,
        generation_cycle=0,
        route=[0, 1],
    )
    head = packet.make_flit(0)
    body = packet.make_flit(1)
    assert head.flit_type is FlitType.HEAD
    assert fabric.grants(0, packet.packet_id, 1, head.is_head)
    fabric.fail_link(0, 1)
    assert not fabric.grants(0, packet.packet_id, 1, head.is_head)
    assert not fabric.grants(1, packet.packet_id, 0, head.is_head)
    # Committed packets drain: body flits still cross the failed link.
    assert fabric.grants(0, packet.packet_id, 1, body.is_head)
    # Other hops are unaffected.
    assert fabric.grants(0, packet.packet_id, 2, head.is_head)


# ----------------------------------------------------------------------
# Single-link failure: rerouting and conservation.
# ----------------------------------------------------------------------


def busiest_mesh_link(system):
    """The in-service mesh link crossed by the most switch-pair routes."""
    topology = system.topology
    counts = {}
    switch_ids = [s.switch_id for s in topology.switches]
    for src in switch_ids:
        for dst in switch_ids:
            if src == dst:
                continue
            route = system.router.route(src, dst)
            for a, b in zip(route, route[1:]):
                link = topology.find_link(a, b)
                if link is not None and link.kind == LinkKind.MESH:
                    counts[link.link_id] = counts.get(link.link_id, 0) + 1
    system.router.clear_cache()
    return max(counts, key=counts.get)


@pytest.mark.parametrize("architecture", [Architecture.SUBSTRATE, Architecture.WIRELESS])
def test_single_link_failure_reroutes_with_conservation(architecture):
    config = small_system_config(architecture)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=900, warmup_cycles=0)
    )
    link_id = busiest_mesh_link(simulation.system)
    plan = FaultPlan(
        scenario="custom",
        fault_rate=0.1,
        seed=0,
        events=(FaultEvent(kind=FaultKind.LINK_DOWN, at_cycle=150, link_id=link_id),),
    )
    result = simulation.run_pattern(
        "uniform", injection_rate=0.03, seed=9, fault_plan=plan
    )
    baseline = simulation.run_pattern("uniform", injection_rate=0.03, seed=9)

    assert result.links_failed == 1
    assert result.fault_events_applied == 1
    assert result.partitions_reported == 0
    assert result.packets_dropped_unroutable == 0
    # The failure provably reroutes: traffic keeps flowing and every
    # injected flit is still accounted for.
    assert result.packets_delivered > 0.8 * baseline.packets_delivered
    assert_flit_conservation(result)
    assert_flit_conservation(baseline)


def test_static_link_failure_applies_at_cycle_zero(small_substrate_system):
    config = small_system_config(Architecture.SUBSTRATE)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=600, warmup_cycles=0)
    )
    link_id = busiest_mesh_link(simulation.system)
    plan = FaultPlan(
        scenario="custom",
        fault_rate=0.1,
        seed=0,
        events=(FaultEvent(kind=FaultKind.LINK_DOWN, at_cycle=0, link_id=link_id),),
    )
    result = simulation.run_pattern(
        "uniform", injection_rate=0.02, seed=4, fault_plan=plan
    )
    assert result.links_failed == 1
    assert result.packets_delivered > 0
    assert_flit_conservation(result)


def test_degraded_port_slows_but_conserves():
    config = small_system_config(Architecture.INTERPOSER)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=900, warmup_cycles=0)
    )
    inter = [
        link
        for link in simulation.system.topology.inter_region_links()
        if link.kind == LinkKind.INTERPOSER
    ]
    events = tuple(
        FaultEvent(
            kind=FaultKind.LINK_DEGRADE,
            at_cycle=100,
            link_id=link.link_id,
            bandwidth_factor=4,
            extra_latency_cycles=6,
            routing_penalty=2.0,
        )
        for link in inter
    )
    plan = FaultPlan(scenario="custom", fault_rate=0.5, seed=0, events=events)
    degraded = simulation.run_pattern(
        "uniform", injection_rate=0.03, seed=9, fault_plan=plan
    )
    baseline = simulation.run_pattern("uniform", injection_rate=0.03, seed=9)
    assert degraded.links_degraded == len(inter)
    assert (
        degraded.average_packet_latency_cycles()
        > baseline.average_packet_latency_cycles()
    )
    assert_flit_conservation(degraded)


# ----------------------------------------------------------------------
# Transceiver failure: wireless -> remaining-fabric fallback.
# ----------------------------------------------------------------------


def test_transceiver_death_falls_back_and_conserves():
    # 2 WIs per chip, so a dead chip transceiver has an in-chip fallback.
    config = replace(small_system_config(Architecture.WIRELESS), cores_per_wi=2)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=900, warmup_cycles=0)
    )
    topology = simulation.system.topology
    plan = create_fault_plan(
        "hub-transceiver-loss", topology, fault_rate=0.4, seed=99, cycles=900
    )
    assert not plan.is_empty
    result = simulation.run_pattern(
        "uniform", injection_rate=0.03, seed=5, fault_plan=plan
    )
    baseline = simulation.run_pattern("uniform", injection_rate=0.03, seed=5)
    assert result.transceivers_failed == len(plan.events)
    assert result.partitions_reported == 0
    assert result.packets_delivered > 0.7 * baseline.packets_delivered
    assert_flit_conservation(result)


def test_hub_loss_skips_articulation_wis(small_wireless_system):
    # At 1 WI per chip every WI is an articulation point: killing any one
    # would disconnect its die, so the scenario must have nothing to kill.
    plan = create_fault_plan(
        "hub-transceiver-loss",
        small_wireless_system.topology,
        fault_rate=1.0,
        seed=1,
        cycles=1000,
    )
    assert plan.is_empty


# ----------------------------------------------------------------------
# Partitions: reported, never silent.
# ----------------------------------------------------------------------


def test_partition_is_reported_and_accounted():
    graph = mesh_graph(2, 1)  # two switches, one link: any failure partitions
    router = ShortestPathRouter(graph)
    traffic = UniformRandomTraffic(
        graph, injection_rate=0.05, memory_access_fraction=0.0, seed=3
    )
    plan = FaultPlan(
        scenario="custom",
        fault_rate=1.0,
        seed=0,
        events=(
            FaultEvent(
                kind=FaultKind.LINK_DOWN,
                at_cycle=200,
                link_id=graph.links[0].link_id,
            ),
        ),
    )
    simulator = Simulator(
        topology=graph,
        router=router,
        traffic=traffic,
        simulation_config=SimulationConfig(cycles=800, warmup_cycles=0),
        fault_plan=plan,
    )
    result = simulator.run()
    assert result.partitions_reported == 1
    # Cross-island traffic keeps being requested after the cut, so drops
    # must be visible in the explicit counter.
    assert result.packets_dropped_unroutable > 0
    assert_flit_conservation(result)
    # The topology is restored for the next run.
    assert graph.disabled_links == []


def test_cascading_partition_conserves(small_substrate_system):
    config = small_system_config(Architecture.SUBSTRATE)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=900, warmup_cycles=0)
    )
    plan = create_fault_plan(
        "cascading",
        simulation.system.topology,
        fault_rate=0.6,
        seed=77,
        cycles=900,
    )
    assert not plan.is_empty
    result = simulation.run_pattern(
        "uniform", injection_rate=0.03, seed=6, fault_plan=plan
    )
    assert result.links_failed == len(plan.events)
    assert_flit_conservation(result)


# ----------------------------------------------------------------------
# Recovery: deadlock-free forwarding or a reported partition.
# ----------------------------------------------------------------------


def test_cdg_detects_a_ring_cycle():
    ring = [[0, 1, 2], [1, 2, 3], [2, 3, 0], [3, 0, 1]]
    cycle = find_channel_dependency_cycle(ring)
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert not routes_are_deadlock_free(ring)
    assert routes_are_deadlock_free([[0, 1, 2], [1, 2, 3]])


def test_recovery_on_mesh_link_failure_is_deadlock_free():
    graph = mesh_graph(3, 3)
    router = ShortestPathRouter(graph)
    # Fail the centre horizontal link (on many XY paths).  Shortest-path
    # recovery around the hole has a channel-dependency cycle (the XY
    # deadlock argument no longer applies), so the recovery contract must
    # install the spanning-tree fallback and come back verified.
    centre = graph.grid_index()[(1, 1)]
    right = graph.grid_index()[(2, 1)]
    link = graph.find_link(centre, right)
    try:
        graph.disable_link(link.link_id)
        provider, report = recover_routing(graph, router)
        assert not report.partitioned
        assert report.used_tree_fallback
        assert report.deadlock_free is True
        assert report.invalid_routes == []
        # The recovered routes avoid the failed link by construction.
        for src in range(graph.num_switches):
            for dst in range(graph.num_switches):
                if src == dst:
                    continue
                route = provider.route(src, dst)
                assert (centre, right) not in zip(route, route[1:])
                assert (right, centre) not in zip(route, route[1:])
    finally:
        graph.enable_all_links()


@settings(max_examples=60, deadline=None)
@given(
    cols=st.integers(min_value=2, max_value=4),
    rows=st.integers(min_value=1, max_value=4),
    link_choice=st.integers(min_value=0, max_value=10_000),
)
def test_any_single_link_failure_recovers_or_reports(cols, rows, link_choice):
    """Property: a single-link failure on a connected mesh either yields a
    verified deadlock-free forwarding state or a reported partition —
    never a silent drop of reachability."""
    graph = mesh_graph(cols, rows, cores=False)
    links = graph.links
    link = links[link_choice % len(links)]
    router = ShortestPathRouter(graph)
    graph.disable_link(link.link_id)
    provider, report = recover_routing(graph, router)
    if report.partitioned:
        # Partition must be real: the two endpoints of the failed link are
        # separated, and it is reported via the component list.
        assert not report.same_component(link.src, link.dst)
        assert sum(len(c) for c in report.components) == graph.num_switches
    else:
        assert report.deadlock_free is True, report.dependency_cycle
        assert report.invalid_routes == []
        # Reachability survives: every pair still gets a valid route from
        # the recovered provider.
        for src in (link.src, link.dst):
            for dst in (s.switch_id for s in graph.switches):
                if src != dst:
                    assert provider.route(src, dst)


# ----------------------------------------------------------------------
# Restore: faulted runs leave no trace.
# ----------------------------------------------------------------------


def test_faulted_run_leaves_no_trace():
    config = small_system_config(Architecture.WIRELESS)
    simulation = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=700, warmup_cycles=0)
    )
    plan = create_fault_plan(
        "random-links", simulation.system.topology, fault_rate=0.5, seed=13, cycles=700
    )
    assert not plan.is_empty
    simulation.run_pattern("uniform", injection_rate=0.02, seed=5, fault_plan=plan)
    assert simulation.system.topology.disabled_links == []
    after = simulation.run_pattern("uniform", injection_rate=0.02, seed=5)
    fresh = MultichipSimulation.from_config(
        config, SimulationConfig(cycles=700, warmup_cycles=0)
    ).run_pattern("uniform", injection_rate=0.02, seed=5)
    assert after.packets_delivered == fresh.packets_delivered
    assert after.latencies_cycles == fresh.latencies_cycles
    assert after.energy.total_pj == fresh.energy.total_pj


def test_empty_plan_is_bit_identical_to_no_plan():
    config = small_system_config(Architecture.SUBSTRATE)

    def run(fault_plan):
        return MultichipSimulation.from_config(
            config, SimulationConfig(cycles=500, warmup_cycles=100)
        ).run_pattern("uniform", injection_rate=0.02, seed=7, fault_plan=fault_plan)

    none_plan = run(None)
    empty = run(
        FaultPlan(scenario="none", fault_rate=0.0, seed=0, events=())
    )
    assert none_plan.packets_delivered == empty.packets_delivered
    assert none_plan.latencies_cycles == empty.latencies_cycles
    assert none_plan.flit_hops == empty.flit_hops
    assert none_plan.energy.total_pj == empty.energy.total_pj


# ----------------------------------------------------------------------
# Task schema v3: faults through the runner and the cache.
# ----------------------------------------------------------------------


def test_task_schema_and_cache_keys():
    # v5 introduced the declarative scenario layer, which compiles
    # documents into these same tasks and shares their cache entries; v6
    # fenced off pre-engine cache entries (the engine itself is not part
    # of the key — both engines are bit-identical).
    assert TASK_SCHEMA_VERSION == 6
    config = small_system_config(Architecture.SUBSTRATE)
    base = SimulationTask(
        kind="synthetic", config=config, cycles=400, warmup_cycles=100, seed=1, load=0.01
    )
    assert base.faults == "none" and base.fault_rate == 0.0
    faulted = replace(base, faults="random-links", fault_rate=0.2)
    assert base.cache_key() != faulted.cache_key()
    assert faulted.cache_key() != replace(faulted, fault_rate=0.3).cache_key()
    assert "faults=random-links@0.2" in faulted.label
    with pytest.raises(KeyError):
        SimulationTask(
            kind="synthetic",
            config=config,
            cycles=400,
            warmup_cycles=100,
            seed=1,
            load=0.01,
            faults="no-such-scenario",
        )
    with pytest.raises(ValueError):
        replace(base, fault_rate=1.5)


class _Fidelity:
    cycles = 500
    warmup_cycles = 100
    seed = 3


def test_runner_executes_and_caches_faulted_tasks(tmp_path):
    config = small_system_config(Architecture.SUBSTRATE)
    task = uniform_task(
        config, _Fidelity(), load=0.02, faults="random-links", fault_rate=0.3
    )
    cold = ExperimentRunner(cache_dir=str(tmp_path))
    first = cold.run([task])[task]
    assert cold.tasks_executed == 1
    warm = ExperimentRunner(cache_dir=str(tmp_path))
    second = warm.run([task])[task]
    assert warm.cache_hits == 1 and warm.tasks_executed == 0
    assert first == second
    assert first.fault_events_applied > 0
    # The pristine twin of the same task lives under a different key.
    pristine = uniform_task(config, _Fidelity(), load=0.02)
    third = ExperimentRunner(cache_dir=str(tmp_path))
    summary = third.run([pristine])[pristine]
    assert third.tasks_executed == 1
    assert summary.fault_events_applied == 0


def test_fig7_runs_at_fast_fidelity(tmp_path):
    from repro.experiments import fig7_resilience

    runner = ExperimentRunner(cache_dir=str(tmp_path))
    result = fig7_resilience.run("fast", runner=runner, fault_rate=0.3)
    assert result.scenario == "random-links"
    assert set(result.curves) == {"mesh", "interposer", "wireless"}
    for label in result.curves:
        rates = [rate for rate, _ in result.curves[label]]
        assert rates == [0.0, 0.3]
        assert all(point.packets_delivered > 0 for _, point in result.curves[label])
        assert 0.0 < result.throughput_retention(label) <= 1.0
    # Warm re-run is served entirely from the cache and is identical.
    warm_runner = ExperimentRunner(cache_dir=str(tmp_path))
    warm = fig7_resilience.run("fast", runner=warm_runner, fault_rate=0.3)
    assert warm_runner.tasks_executed == 0
    assert warm.rows() == result.rows()
