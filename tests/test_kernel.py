"""Parity and scheduling tests for the phase-structured simulation kernel.

The central guarantee of the kernel refactor: the active-set scheduler
(which skips idle switches) reproduces the dense reference scheduler (the
original engine's visit-everything loop) *bit for bit* — same counters,
same per-packet latency samples, same energy breakdown, same MAC
statistics — on every architecture and under both synthetic and
application traffic.
"""

from __future__ import annotations

import pytest

from repro.core.architectures import build_system
from repro.core.config import Architecture, SystemConfig
from repro.core.framework import MultichipSimulation
from repro.noc.engine import SCHEDULERS, SimulationConfig, Simulator
from repro.noc.kernel import (
    ActiveSetScheduler,
    DenseScheduler,
    SimulationStallError,
    make_scheduler,
)
from repro.testing import small_network_config, small_system_config
from repro.traffic.base import TrafficModel, TrafficRequest
from repro.traffic.registry import create_pattern
from repro.traffic.synfull import SynfullApplicationTraffic

#: The four comparison systems: a single-chip mesh baseline plus the
#: paper's three multichip interconnect architectures.
ARCHITECTURES = {
    "mesh": lambda: SystemConfig(
        architecture=Architecture.SUBSTRATE,
        num_chips=1,
        cores_per_chip=8,
        num_memory_stacks=2,
        vaults_per_stack=2,
        cores_per_wi=4,
        total_processing_area_mm2=100.0,
        network=small_network_config(),
    ),
    "substrate": lambda: small_system_config(Architecture.SUBSTRATE),
    "interposer": lambda: small_system_config(Architecture.INTERPOSER),
    "wireless": lambda: small_system_config(Architecture.WIRELESS),
}


def result_fingerprint(result):
    """Everything that must be identical between the two schedulers."""
    return {
        "packets_offered": result.packets_offered,
        "packets_generated": result.packets_generated,
        "packets_delivered": result.packets_delivered,
        "packets_delivered_measured": result.packets_delivered_measured,
        "flits_injected": result.flits_injected,
        "flits_ejected_measured": result.flits_ejected_measured,
        "flit_hops": result.flit_hops,
        "wireless_flit_hops": result.wireless_flit_hops,
        "latencies": tuple(result.latencies_cycles),
        "network_latencies": tuple(result.network_latencies_cycles),
        "packet_energies": tuple(result.packet_energies_pj),
        "packet_hops": tuple(result.packet_hops),
        "energy": result.energy.as_dict(),
        "mac_statistics": result.mac_statistics,
        "sleep_fraction": result.transceiver_sleep_fraction,
        "stalled": result.stalled,
        "offered_load": result.offered_load_packets_per_core_per_cycle,
    }


def run_with_scheduler(config, traffic_factory, scheduler, cycles=500):
    system = build_system(config)
    traffic = traffic_factory(system)
    simulator = Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=config.network,
        simulation_config=SimulationConfig(
            cycles=cycles, warmup_cycles=cycles // 4, scheduler=scheduler
        ),
    )
    return simulator.run()


def uniform_factory(rate=0.03, seed=11):
    def make(system):
        return create_pattern(
            "uniform",
            system.topology,
            injection_rate=rate,
            memory_access_fraction=0.25,
            seed=seed,
        )

    return make


def synfull_factory(application="canneal", seed=5):
    def make(system):
        return SynfullApplicationTraffic.from_name(
            system.topology, application, rate_scale=0.4, seed=seed
        )

    return make


class TestKernelParity:
    @pytest.mark.parametrize("name", sorted(ARCHITECTURES))
    def test_uniform_parity_across_architectures(self, name):
        config = ARCHITECTURES[name]()
        dense = run_with_scheduler(config, uniform_factory(), "dense")
        active = run_with_scheduler(config, uniform_factory(), "active")
        assert result_fingerprint(dense) == result_fingerprint(active)

    @pytest.mark.parametrize("name", sorted(ARCHITECTURES))
    def test_synfull_parity_across_architectures(self, name):
        config = ARCHITECTURES[name]()
        dense = run_with_scheduler(config, synfull_factory(), "dense")
        active = run_with_scheduler(config, synfull_factory(), "active")
        assert result_fingerprint(dense) == result_fingerprint(active)

    def test_parity_with_memory_replies(self):
        """Reply traffic (delivery callbacks re-queue packets) stays identical."""

        def factory(system):
            from repro.traffic.uniform import UniformRandomTraffic

            return UniformRandomTraffic(
                system.topology,
                injection_rate=0.03,
                memory_access_fraction=0.3,
                memory_replies=True,
                seed=3,
            )

        config = small_system_config(Architecture.WIRELESS)
        dense = run_with_scheduler(config, factory, "dense")
        active = run_with_scheduler(config, factory, "active")
        assert result_fingerprint(dense) == result_fingerprint(active)

    def test_parity_at_saturating_load(self):
        """Wake sets must also match when the network is congested."""
        config = small_system_config(Architecture.INTERPOSER)
        dense = run_with_scheduler(config, uniform_factory(rate=0.3), "dense")
        active = run_with_scheduler(config, uniform_factory(rate=0.3), "active")
        assert result_fingerprint(dense) == result_fingerprint(active)

    def test_parity_under_token_mac(self):
        config = small_system_config(Architecture.WIRELESS, mac="token")
        dense = run_with_scheduler(config, uniform_factory(), "dense")
        active = run_with_scheduler(config, uniform_factory(), "active")
        assert result_fingerprint(dense) == result_fingerprint(active)


class TestSchedulerSelection:
    def test_known_schedulers(self):
        assert isinstance(make_scheduler("dense"), DenseScheduler)
        assert isinstance(make_scheduler("active"), ActiveSetScheduler)
        assert set(SCHEDULERS) == {"active", "dense"}

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("bogus")
        with pytest.raises(ValueError, match="unknown scheduler"):
            SimulationConfig(cycles=100, warmup_cycles=10, scheduler="bogus")

    def test_default_is_active(self):
        assert SimulationConfig().scheduler == "active"


class TestActiveSetBookkeeping:
    def test_idle_network_visits_no_switches(self):
        """At zero load the wake sets stay empty for the whole run."""
        config = small_system_config(Architecture.WIRELESS)
        system = build_system(config)
        traffic = uniform_factory(rate=0.0)(system)
        scheduler = ActiveSetScheduler()
        simulator = Simulator(
            topology=system.topology,
            router=system.router,
            traffic=traffic,
            network_config=config.network,
            simulation_config=SimulationConfig(cycles=200, warmup_cycles=50),
        )
        # Run through the kernel directly so we can inspect the scheduler.
        from repro.energy import EnergyAccountant
        from repro.noc.kernel import SimulationKernel
        from repro.noc.network import Network
        from repro.noc.stats import SimulationResult

        network = Network(system.topology, config.network)
        accountant = EnergyAccountant(technology=config.network.technology)
        for fabric in network.fabrics:
            fabric.bind_accountant(accountant)
        result = SimulationResult(cycles=200, warmup_cycles=50, num_cores=8)
        kernel = SimulationKernel(
            network=network,
            router=system.router,
            traffic=traffic,
            accountant=accountant,
            result=result,
            config=simulator.simulation_config,
            net_config=config.network,
            scheduler=scheduler,
        )
        traffic.reset()
        kernel.run()
        assert not list(scheduler.allocation_candidates())
        assert not list(scheduler.injection_candidates())

    def test_wake_sets_drain_after_traffic_stops(self):
        """Once all packets deliver, every switch goes back to sleep."""

        class OneShotTraffic(TrafficModel):
            def generate(self, cycle):
                if cycle == 0:
                    yield TrafficRequest(self._cores[0], self._cores[-1])

        config = small_system_config(Architecture.INTERPOSER)
        system = build_system(config)
        traffic = OneShotTraffic(system.topology)
        scheduler = ActiveSetScheduler()

        from repro.energy import EnergyAccountant
        from repro.noc.kernel import SimulationKernel
        from repro.noc.network import Network
        from repro.noc.stats import SimulationResult

        network = Network(system.topology, config.network)
        accountant = EnergyAccountant(technology=config.network.technology)
        for fabric in network.fabrics:
            fabric.bind_accountant(accountant)
        result = SimulationResult(cycles=400, warmup_cycles=0, num_cores=8)
        kernel = SimulationKernel(
            network=network,
            router=system.router,
            traffic=traffic,
            accountant=accountant,
            result=result,
            config=SimulationConfig(cycles=400, warmup_cycles=0),
            net_config=config.network,
            scheduler=scheduler,
        )
        kernel.run()
        assert result.packets_delivered == 1
        assert not list(scheduler.allocation_candidates())
        assert not list(scheduler.injection_candidates())


class TestWatchdog:
    def _kernel(self, traffic, config, sim_config):
        from repro.energy import EnergyAccountant
        from repro.noc.kernel import SimulationKernel
        from repro.noc.network import Network
        from repro.noc.stats import SimulationResult

        system = build_system(config)
        network = Network(system.topology, config.network)
        accountant = EnergyAccountant(technology=config.network.technology)
        for fabric in network.fabrics:
            fabric.bind_accountant(accountant)
        result = SimulationResult(
            cycles=sim_config.cycles,
            warmup_cycles=sim_config.warmup_cycles,
            num_cores=8,
        )
        traffic_model = traffic(system)
        return (
            SimulationKernel(
                network=network,
                router=system.router,
                traffic=traffic_model,
                accountant=accountant,
                result=result,
                config=sim_config,
                net_config=config.network,
            ),
            result,
        )

    def test_watchdog_still_catches_real_stalls(self):
        """A packet parked forever in a source queue must still trip it."""

        class StuckTraffic(TrafficModel):
            """Queues one packet, then the test blocks all injection."""

            def generate(self, cycle):
                if cycle == 0:
                    yield TrafficRequest(self._cores[0], self._cores[-1])

        config = small_system_config(Architecture.INTERPOSER)
        sim_config = SimulationConfig(
            cycles=300, warmup_cycles=0, watchdog_cycles=50
        )
        kernel, _ = self._kernel(lambda s: StuckTraffic(s.topology), config, sim_config)
        # Fill every local VC of every switch with a fake owner so the
        # queued packet can never be injected: no progress, traffic in
        # flight -> the watchdog must fire.
        for switch in kernel.state.network.switches.values():
            for vc in switch.local_input.vcs:
                vc.allocated_packet_id = 10_000 + vc.ordinal
        with pytest.raises(SimulationStallError):
            kernel.run()

    def test_warmup_boundary_reanchors_watchdog(self):
        """Cold-start cycles before warm-up no longer feed the watchdog.

        A packet sits undeliverable in a source queue from cycle 0 (all
        local VCs pre-claimed).  Without the warm-up re-anchor the
        watchdog would fire at ``watchdog_cycles`` (300 < 500); with it,
        the countdown restarts at the warm-up boundary (cycle 250) and the
        run completes.
        """

        class StuckTraffic(TrafficModel):
            def generate(self, cycle):
                if cycle == 0:
                    yield TrafficRequest(self._cores[0], self._cores[-1])

        config = small_system_config(Architecture.INTERPOSER)
        sim_config = SimulationConfig(
            cycles=500, warmup_cycles=250, watchdog_cycles=300
        )
        kernel, result = self._kernel(
            lambda s: StuckTraffic(s.topology), config, sim_config
        )
        for switch in kernel.state.network.switches.values():
            for vc in switch.local_input.vcs:
                vc.allocated_packet_id = 10_000 + vc.ordinal
        kernel.run()  # must not raise: the anchor moved to cycle 250
        assert result.packets_delivered == 0

    def test_phase_change_reanchors_watchdog_after_progress(self):
        """A quiet phase following a productive one extends the countdown.

        Packet A (deliverable) makes real progress early; packet B is
        parked undeliverable in a source queue on the other chip (its
        source switch's local VCs are pre-claimed).  The phase token
        changes once, at cycle 100 — after the progress — which re-anchors
        the watchdog there.  The stall therefore fires at exactly cycle
        100 + watchdog_cycles instead of ~A's-delivery + watchdog_cycles,
        proving the anchor moved.
        """

        class PhasedTraffic(TrafficModel):
            def generate(self, cycle):
                if cycle == 0:
                    yield TrafficRequest(self._cores[0], self._cores[1])
                    yield TrafficRequest(self._cores[-1], self._cores[0])

            def phase_token(self):
                return 1 if getattr(self, "_past", False) else 0

            def on_past(self):
                self._past = True

        traffic_holder = {}

        def factory(system):
            traffic_holder["traffic"] = PhasedTraffic(system.topology)
            return traffic_holder["traffic"]

        config = small_system_config(Architecture.INTERPOSER)
        sim_config = SimulationConfig(
            cycles=400, warmup_cycles=0, watchdog_cycles=100
        )
        kernel, result = self._kernel(factory, config, sim_config)

        # Flip the phase token at cycle 100 by piggybacking on generate.
        traffic = traffic_holder["traffic"]
        original_generate = traffic.generate

        def generate(cycle):
            if cycle == 100:
                traffic.on_past()
            return original_generate(cycle)

        traffic.generate = generate

        # Park packet B forever: claim its source switch's local VCs.
        stuck_source = traffic.cores[-1]
        switch = kernel.state.network.switch_for_endpoint(stuck_source)
        for vc in switch.local_input.vcs:
            vc.allocated_packet_id = 10_000 + vc.ordinal

        with pytest.raises(SimulationStallError, match="at cycle 200"):
            kernel.run()
        assert result.packets_delivered == 1  # A's progress happened first

    def test_fast_cycling_phases_cannot_mask_a_deadlock(self):
        """Phase changes without progress must not suppress the watchdog.

        One undeliverable packet sits in a source queue (all local VCs
        pre-claimed) while the phase token changes every 40 cycles — far
        faster than ``watchdog_cycles``.  Re-anchoring is gated on
        progress, so only the first change (progress level 0 is not above
        the anchor mark) is ignored and the stall still raises.
        """

        class PhasedTraffic(TrafficModel):
            def __init__(self, topology):
                super().__init__(topology)
                self._window = 0

            def generate(self, cycle):
                self._window = cycle // 40
                if cycle == 0:
                    yield TrafficRequest(self._cores[0], self._cores[-1])

            def phase_token(self):
                return self._window

        config = small_system_config(Architecture.INTERPOSER)
        sim_config = SimulationConfig(
            cycles=300, warmup_cycles=0, watchdog_cycles=50
        )
        kernel, _ = self._kernel(
            lambda s: PhasedTraffic(s.topology), config, sim_config
        )
        for switch in kernel.state.network.switches.values():
            for vc in switch.local_input.vcs:
                vc.allocated_packet_id = 10_000 + vc.ordinal
        with pytest.raises(SimulationStallError):
            kernel.run()


class TestSelfThroughput:
    def test_result_records_wall_clock_and_rates(self):
        config = small_system_config(Architecture.WIRELESS)
        result = run_with_scheduler(config, uniform_factory(), "active", cycles=300)
        assert result.wall_clock_seconds > 0
        assert result.simulated_cycles_per_second() > 0
        assert result.simulated_flits_per_second() > 0
        summary = result.summary()
        assert summary["sim_cycles_per_second"] == pytest.approx(
            result.simulated_cycles_per_second()
        )

    def test_facade_still_works_through_framework(self):
        simulation = MultichipSimulation.from_config(
            small_system_config(Architecture.WIRELESS),
            SimulationConfig(cycles=300, warmup_cycles=50),
        )
        result = simulation.run_pattern("transpose", injection_rate=0.05, seed=2)
        assert result.packets_delivered > 0
