"""Parity and plumbing tests for multi-lane batched co-simulation.

The contract of :mod:`repro.noc.lanes`: fusing N compatible simulations
into one vectorised cycle loop changes *throughput only* — every lane's
result is bit-identical to the same task run solo through the scalar
engine, and the layers above (runner batch planner, sweep service) keep
cache keys, dedupe and coalescing exactly as they were.
"""

from __future__ import annotations

import asyncio
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import build_system
from repro.core.config import Architecture, SystemConfig
from repro.noc.engine import SimulationConfig, Simulator
from repro.noc.lanes import BatchIneligibleError, run_batched
from repro.parallel.runner import (
    ExperimentRunner,
    SimulationTask,
    _task_batchable,
    execute_task_batch,
    plan_batches,
    task_simulator,
)
from repro.service.jobs import ServiceConfig, SweepService
from repro.traffic.rng import derive_seed, lane_seeds

from test_kernel import (
    ARCHITECTURES,
    result_fingerprint,
    synfull_factory,
    uniform_factory,
)

CYCLES = 360

#: Wired architectures only — the wireless fabric arbitrates a shared
#: medium and is excluded from lane batching by design.
WIRED = [name for name in sorted(ARCHITECTURES) if name != "wireless"]


def build_lane(config, traffic_factory, cycles=CYCLES, engine="vector"):
    system = build_system(config)
    return Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic_factory(system),
        network_config=config.network,
        simulation_config=SimulationConfig(
            cycles=cycles, warmup_cycles=cycles // 4, engine=engine
        ),
    )


def solo_scalar(config, traffic_factory, cycles=CYCLES):
    return build_lane(config, traffic_factory, cycles, engine="scalar").run()


class TestLaneParity:
    @pytest.mark.parametrize("arch", WIRED)
    def test_uniform_lanes_bit_identical_to_solo_scalar(self, arch):
        """Multi-seed, multi-load lanes each match their solo scalar twin."""
        config = ARCHITECTURES[arch]()
        variants = [uniform_factory(rate=r, seed=s) for r, s in
                    [(0.02, 3), (0.035, 11), (0.05, 42)]]
        batched = run_batched([build_lane(config, f) for f in variants])
        for factory, result in zip(variants, batched):
            assert result.engine_used == "vector-batched"
            want = result_fingerprint(solo_scalar(config, factory))
            assert result_fingerprint(result) == want

    def test_synfull_lanes_bit_identical_to_solo_scalar(self):
        """Application traffic (memory replies re-enter via the lane's
        enqueue path) survives fusion bit for bit."""
        config = ARCHITECTURES["substrate"]()
        variants = [synfull_factory("fft", seed=5), synfull_factory("lu", seed=9)]
        batched = run_batched([build_lane(config, f) for f in variants])
        for factory, result in zip(variants, batched):
            assert result_fingerprint(result) == result_fingerprint(
                solo_scalar(config, factory)
            )

    def test_ragged_termination(self):
        """Lanes with different horizons retire independently; survivors
        keep producing bit-identical results after neighbours go inert."""
        config = ARCHITECTURES["interposer"]()
        spans = [(300, 7), (480, 7), (360, 23), (300, 7)]
        sims = [build_lane(config, uniform_factory(seed=s), cycles=c)
                for c, s in spans]
        batched = run_batched(sims)
        for (cycles, seed), result in zip(spans, batched):
            want = solo_scalar(config, uniform_factory(seed=seed), cycles=cycles)
            assert result_fingerprint(result) == result_fingerprint(want)

    def test_single_lane_batch(self):
        config = ARCHITECTURES["mesh"]()
        [result] = run_batched([build_lane(config, uniform_factory())])
        assert result_fingerprint(result) == result_fingerprint(
            solo_scalar(config, uniform_factory())
        )

    @settings(max_examples=6, deadline=None)
    @given(
        arch=st.sampled_from(WIRED),
        base_seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.005, max_value=0.06),
        lanes=st.integers(min_value=1, max_value=4),
    )
    def test_property_random_batches_match_solo_scalar(
        self, arch, base_seed, rate, lanes
    ):
        config = ARCHITECTURES[arch]()
        seeds = lane_seeds(base_seed, lanes)
        factories = [uniform_factory(rate=rate, seed=s) for s in seeds]
        batched = run_batched(
            [build_lane(config, f, cycles=240) for f in factories]
        )
        for factory, result in zip(factories, batched):
            want = solo_scalar(config, factory, cycles=240)
            assert result_fingerprint(result) == result_fingerprint(want)


class TestEligibility:
    def test_wireless_batch_rejected(self):
        config = ARCHITECTURES["wireless"]()
        sims = [build_lane(config, uniform_factory(seed=s)) for s in (1, 2)]
        with pytest.raises(BatchIneligibleError, match="wired"):
            run_batched(sims)

    def test_mixed_network_configs_rejected(self):
        sims = [
            build_lane(ARCHITECTURES["substrate"](), uniform_factory()),
            build_lane(ARCHITECTURES["mesh"](), uniform_factory()),
        ]
        with pytest.raises(BatchIneligibleError):
            run_batched(sims)

    def test_empty_batch_rejected(self):
        with pytest.raises(BatchIneligibleError, match="empty"):
            run_batched([])

    def test_lane_seeds_contract(self):
        assert lane_seeds(99, 1) == [99]
        assert lane_seeds(99, 3) == [
            99, derive_seed(99, "lane", 1), derive_seed(99, "lane", 2)
        ]
        with pytest.raises(ValueError):
            lane_seeds(99, 0)


def _task(config, seed, load, cycles=300, **kwargs):
    return SimulationTask(
        kind="synthetic", config=config, cycles=cycles,
        warmup_cycles=cycles // 4, seed=seed, load=load, **kwargs
    )


_SUBSTRATE = SystemConfig(architecture=Architecture.SUBSTRATE)
_INTERPOSER = SystemConfig(architecture=Architecture.INTERPOSER)
_WIRELESS = SystemConfig(architecture=Architecture.WIRELESS)


class TestBatchPlanner:
    def test_groups_by_effective_config_and_flushes_at_lane_count(self):
        a = [_task(_SUBSTRATE, s, 0.003) for s in range(5)]
        b = [_task(_INTERPOSER, s, 0.003) for s in range(2)]
        batches = plan_batches(a + b, lanes=4)
        shapes = sorted(
            (len(batch), batch[0].effective_config().architecture.value)
            for batch in batches
        )
        assert shapes == [(1, "substrate"), (2, "interposer"), (4, "substrate")]

    def test_lanes_of_one_is_structural_noop(self):
        tasks = [_task(_SUBSTRATE, s, 0.003) for s in range(3)]
        assert plan_batches(tasks, lanes=1) == [[t] for t in tasks]

    def test_unbatchable_tasks_stay_solo(self):
        wireless = _task(_WIRELESS, 1, 0.003)
        faulted = _task(_SUBSTRATE, 2, 0.003, faults="random-links", fault_rate=0.05)
        wired = [_task(_SUBSTRATE, s, 0.003) for s in (3, 4)]
        assert not _task_batchable(wireless) and not _task_batchable(faulted)
        batches = plan_batches([wireless, faulted] + wired, lanes=4)
        assert sorted(len(b) for b in batches) == [1, 1, 2]

    def test_execute_task_batch_falls_back_solo_for_scalar_engine(self):
        tasks = [_task(_SUBSTRATE, s, 0.003) for s in (0, 1)]
        scalar = execute_task_batch(tasks, engine="scalar")
        batched = execute_task_batch(tasks, engine="vector")
        for solo, fused in zip(scalar, batched):
            assert solo["engine_used"] == "scalar"
            assert fused["engine_used"] == "vector-batched"
            identical = {k: v for k, v in solo.items() if k != "engine_used"}
            assert identical == {k: v for k, v in fused.items() if k != "engine_used"}


class TestRunnerBatching:
    TASKS = [_task(_SUBSTRATE, s, 0.002 + 0.001 * s) for s in range(4)]

    def test_batch_spanning_cache_hits_and_misses(self, tmp_path):
        ref = ExperimentRunner().run(self.TASKS)
        cache = os.fspath(tmp_path / "cache")
        warm = ExperimentRunner(cache_dir=cache, engine="vector", batch_lanes=4)
        warm.run(self.TASKS[:2])
        mixed = ExperimentRunner(cache_dir=cache, engine="vector", batch_lanes=4)
        got = mixed.run(self.TASKS)
        assert mixed.cache_hits == 2 and mixed.cache_misses == 2
        assert got == ref

    def test_cache_keys_unchanged_by_batching(self, tmp_path):
        """A scalar runner is fully served by a batched runner's cache."""
        cache = os.fspath(tmp_path / "cache")
        batched = ExperimentRunner(cache_dir=cache, engine="vector", batch_lanes=4)
        want = batched.run(self.TASKS)
        scalar = ExperimentRunner(cache_dir=cache)
        got = scalar.run(self.TASKS)
        assert scalar.tasks_executed == 0 and scalar.cache_hits == len(self.TASKS)
        assert got == want

    def test_vector_fallback_is_surfaced(self):
        tasks = [_task(_WIRELESS, 1, 0.002), _task(_SUBSTRATE, 2, 0.002)]
        runner = ExperimentRunner(engine="vector", batch_lanes=2)
        results = runner.run(tasks)
        assert results[tasks[0]].engine_used == "scalar"
        assert runner.vector_fallbacks == 1
        assert "1 task(s) requested the vector engine" in runner.summary_line()
        scalar_runner = ExperimentRunner()
        scalar_runner.run(tasks)
        assert scalar_runner.vector_fallbacks == 0
        assert "requested the vector engine" not in scalar_runner.summary_line()

    def test_engine_used_stamps(self):
        task = self.TASKS[0]
        assert task_simulator(task, engine="scalar").run().engine_used == "scalar"
        assert task_simulator(task, engine="vector").run().engine_used == "vector"


class TestServiceBatching:
    def test_submission_with_lanes_that_dedupe_away(self, tmp_path):
        """Duplicate submissions dedupe before batching: only unique
        tasks occupy lanes, and every result matches the scalar engine."""
        tasks = [_task(_SUBSTRATE, s, 0.003) for s in range(3)]
        submitted = tasks + [_task(_SUBSTRATE, 0, 0.003)]  # dup of tasks[0]
        ref = ExperimentRunner().run(tasks)

        async def scenario():
            config = ServiceConfig(
                jobs=1, cache_dir=os.fspath(tmp_path / "cache"),
                engine="vector", batch_lanes=4, use_processes=False,
            )
            service = SweepService(config)
            await service.start()
            try:
                job = await service.submit(submitted)
                await job.wait()
                return job
            finally:
                await service.stop()

        job = asyncio.run(scenario())
        assert job.state.value == "done", job.errors
        assert job.executed == len(tasks)  # the duplicate never ran
        summaries = job.summaries()
        for task in tasks:
            assert summaries[task] == ref[task]
            assert summaries[task].engine_used == "vector-batched"
