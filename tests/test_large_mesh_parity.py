"""Scalar/vector/lane-batch parity at the 1000-core-class scale.

The small-system parity matrices (``test_vector_engine.py``,
``test_lane_batch.py``) run fabrics of a few dozen switches; the
benchmark's 1024-core mesh point is where the vector engine's array
paths — and since PR 10 the bulk send/eject epilogue and the calendar
wheel — operate on thousands of VC rows per cycle, with wheel pushes and
energy scatters orders of magnitude wider than the small matrix ever
builds.  This module pins bit-identity at that scale directly, at a
reduced cycle budget so it stays CI-shaped (the benchmark re-asserts the
same parity at full budget before timing anything).
"""

from __future__ import annotations

from repro.core.architectures import build_system
from repro.core.config import Architecture, SystemConfig
from repro.noc.engine import SimulationConfig, Simulator
from repro.noc.lanes import run_batched
from repro.traffic.rng import lane_seeds
from repro.traffic.uniform import UniformRandomTraffic

from test_kernel import result_fingerprint

#: Mirrors the benchmark's ``large_mesh_config()`` point (a 1024-core
#: single-chip mesh) without importing from ``benchmarks/``.
CORES = 1024
CYCLES = 120
LOAD = 0.02


def _run(seed, engine):
    config = SystemConfig(
        architecture=Architecture.SUBSTRATE, num_chips=1, cores_per_chip=CORES
    )
    system = build_system(config)
    traffic = UniformRandomTraffic(
        system.topology,
        injection_rate=LOAD,
        memory_access_fraction=0.25,
        seed=seed,
    )
    return Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=config.network,
        simulation_config=SimulationConfig(
            cycles=CYCLES, warmup_cycles=CYCLES // 4, engine=engine
        ),
    )


def test_vector_engine_bit_identical_on_1024_core_mesh():
    scalar = _run(seed=11, engine="scalar").run()
    vector = _run(seed=11, engine="vector").run()
    # The run must be busy enough to exercise wide epilogues (thousands
    # of hops), or scale parity would be asserted on a near-idle fabric.
    assert scalar.flit_hops > 10_000
    assert result_fingerprint(scalar) == result_fingerprint(vector)


def test_lane_batched_bit_identical_on_1024_core_mesh():
    seeds = lane_seeds(11, 2)
    batched = run_batched([_run(seed, engine="vector") for seed in seeds])
    for seed, result in zip(seeds, batched):
        solo = _run(seed, engine="scalar").run()
        assert result_fingerprint(result) == result_fingerprint(solo)
