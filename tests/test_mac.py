"""Unit tests of the wireless MAC protocols against a scripted adapter."""

from typing import Dict, List, Tuple

import pytest

from repro.testing.legacy import MacAdapter, PendingTransmission
from repro.wireless.mac import ControlPacketMac, FdmaMac, TdmaMac, TokenMac


class ScriptedAdapter(MacAdapter):
    """A MAC adapter whose pending traffic is set directly by the test."""

    def __init__(self) -> None:
        self.pending_by_wi: Dict[int, List[PendingTransmission]] = {}
        self.space: Dict[Tuple[int, int], int] = {}
        self.control_energy_pj = 0.0

    def pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        return list(self.pending_by_wi.get(wi_switch_id, []))

    def record_control_energy(self, energy_pj: float) -> None:
        self.control_energy_pj += energy_pj

    def acceptable_flits(self, dst_switch: int, packet_id: int, is_head: bool) -> int:
        return self.space.get((dst_switch, packet_id), 64)

    # Helpers -----------------------------------------------------------

    def set_pending(self, wi: int, dst: int, packet_id: int, buffered: int,
                    length: int, is_head: bool = True, remaining: int = None) -> None:
        entry = PendingTransmission(
            dst_switch=dst,
            packet_id=packet_id,
            buffered_flits=buffered,
            packet_length_flits=length,
            front_is_head=is_head,
            remaining_flits=remaining if remaining is not None else length,
        )
        self.pending_by_wi.setdefault(wi, []).append(entry)

    def clear(self, wi: int) -> None:
        self.pending_by_wi.pop(wi, None)


class TestControlPacketMac:
    def _mac(self, adapter, wis=(10, 20, 30)):
        return ControlPacketMac(0, list(wis), adapter, control_packet_cycles=2)

    def test_idle_channel_grants_nobody(self):
        adapter = ScriptedAdapter()
        mac = self._mac(adapter)
        mac.update(0)
        assert mac.current_transmitter() is None
        assert not mac.grants(10, 1, 20, True)

    def test_grant_follows_pending_traffic(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(20, dst=30, packet_id=5, buffered=4, length=8)
        mac = self._mac(adapter)
        mac.update(0)
        assert mac.current_transmitter() == 20
        # During the control-packet broadcast no data may be sent.
        assert not mac.grants(20, 5, 30, True)
        mac.update(1)
        mac.update(2)
        assert mac.grants(20, 5, 30, True)
        # Other WIs are excluded while 20 holds the channel.
        assert not mac.grants(10, 5, 30, True)

    def test_control_packet_energy_charged(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(10, dst=20, packet_id=1, buffered=2, length=4)
        mac = self._mac(adapter)
        mac.update(0)
        assert adapter.control_energy_pj > 0
        assert mac.stats.control_packets == 1

    def test_burst_consumption_and_rotation(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(10, dst=20, packet_id=1, buffered=2, length=2)
        mac = self._mac(adapter)
        mac.update(0)
        mac.update(1)
        mac.update(2)
        assert mac.grants(10, 1, 20, True)
        mac.notify_sent(10, 1, 20, is_tail=False, cycle=3)
        mac.notify_sent(10, 1, 20, is_tail=True, cycle=4)
        adapter.clear(10)
        adapter.set_pending(30, dst=10, packet_id=2, buffered=1, length=1)
        mac.update(5)
        assert mac.current_transmitter() == 30

    def test_partial_packet_transmission_allowed(self):
        """Only the buffered/acceptable part of a packet is announced."""
        adapter = ScriptedAdapter()
        adapter.space[(20, 1)] = 3
        adapter.set_pending(10, dst=20, packet_id=1, buffered=6, length=64, remaining=64)
        mac = self._mac(adapter)
        mac.update(0)
        plan = mac._plan  # internal, but the partial-packet rule is the point
        assert plan is not None
        assert plan.remaining[(20, 1)] == 3

    def test_sleepy_receiver_set(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(10, dst=30, packet_id=1, buffered=2, length=4)
        mac = self._mac(adapter)
        mac.update(0)
        receivers = mac.intended_receivers()
        assert receivers == {30}

    def test_deadline_forces_release(self):
        adapter = ScriptedAdapter()
        adapter.space[(20, 1)] = 64
        adapter.set_pending(10, dst=20, packet_id=1, buffered=4, length=4)
        mac = ControlPacketMac(0, [10, 20], adapter, control_packet_cycles=1,
                               hold_slack_cycles=2)
        mac.update(0)
        # Never send anything; after the deadline the channel must be freed.
        for cycle in range(1, 40):
            mac.update(cycle)
        assert mac.stats.forced_releases >= 1

    def test_invalid_parameters(self):
        adapter = ScriptedAdapter()
        with pytest.raises(ValueError):
            ControlPacketMac(0, [], adapter)
        with pytest.raises(ValueError):
            ControlPacketMac(0, [1], adapter, control_packet_cycles=0)


class TestTokenMac:
    def _mac(self, adapter, wis=(10, 20)):
        return TokenMac(0, list(wis), adapter, token_pass_latency_cycles=1)

    def test_only_holder_with_whole_packet_may_send(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(10, dst=20, packet_id=1, buffered=2, length=4)
        mac = self._mac(adapter)
        mac.update(0)
        # Packet only partially buffered: the token MAC must refuse it.
        assert not mac.grants(10, 1, 20, True)

    def test_whole_packet_transmission_and_token_release(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(10, dst=20, packet_id=1, buffered=4, length=4)
        mac = self._mac(adapter)
        mac.update(0)
        assert mac.grants(10, 1, 20, True)
        mac.notify_sent(10, 1, 20, is_tail=False, cycle=0)
        assert mac.grants(10, 1, 20, False)
        mac.notify_sent(10, 1, 20, is_tail=True, cycle=3)
        # Tail sent: the token moves on.
        assert mac.stats.token_passes >= 1
        assert not mac.grants(10, 1, 20, True)

    def test_token_rotates_when_holder_idle(self):
        adapter = ScriptedAdapter()
        mac = self._mac(adapter)
        passes_before = mac.stats.token_passes
        for cycle in range(6):
            mac.update(cycle)
        assert mac.stats.token_passes > passes_before

    def test_non_holder_never_sends(self):
        adapter = ScriptedAdapter()
        adapter.set_pending(20, dst=10, packet_id=3, buffered=4, length=4)
        mac = self._mac(adapter)
        mac.update(0)
        assert not mac.grants(20, 3, 10, True) or mac.current_transmitter() == 20

    def test_receivers_always_awake(self):
        adapter = ScriptedAdapter()
        mac = self._mac(adapter)
        assert mac.intended_receivers() == {10, 20}

    def test_member_index_validation(self):
        adapter = ScriptedAdapter()
        mac = self._mac(adapter)
        with pytest.raises(ValueError):
            mac.member_index(99)


class TestTdmaMac:
    def _mac(self, adapter, wis=(10, 20), slot_cycles=4, guard_cycles=1):
        return TdmaMac(0, list(wis), adapter, slot_cycles=slot_cycles,
                       guard_cycles=guard_cycles)

    def test_only_slot_owner_may_send(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(1)  # past the guard cycle of WI 10's slot
        assert mac.current_transmitter() == 10
        assert mac.grants(10, 1, 20, True)
        assert not mac.grants(20, 1, 10, True)

    def test_guard_time_blocks_data(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(0)  # first cycle of the slot is the guard
        assert not mac.grants(10, 1, 20, True)
        mac.update(1)
        assert mac.grants(10, 1, 20, True)

    def test_schedule_rotates_between_slots(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(1)
        assert mac.current_transmitter() == 10
        mac.update(5)  # second slot (cycles 4-7) belongs to WI 20
        assert mac.current_transmitter() == 20
        assert mac.grants(20, 2, 10, True)
        mac.update(9)  # wraps back to WI 10
        assert mac.current_transmitter() == 10

    def test_idle_slot_counts_as_idle_grant_cycles(self):
        mac = self._mac(ScriptedAdapter())
        for cycle in range(9):
            mac.update(cycle)
        assert mac.stats.idle_grant_cycles >= 8  # two empty slots settled

    def test_finalize_settles_the_last_slot(self):
        """Flits of the run's final slot still count as a grant."""
        mac = self._mac(ScriptedAdapter())
        mac.update(1)
        mac.notify_sent(10, 3, 20, is_tail=False, cycle=1)
        assert mac.stats.grants == 0  # no rollover observed yet
        mac.finalize_stats()
        assert mac.stats.grants == 1
        mac.finalize_stats()  # idempotent
        assert mac.stats.grants == 1

    def test_finalize_counts_partial_idle_slot(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(0)
        mac.update(1)  # run ends two cycles into an empty 4-cycle slot
        mac.finalize_stats()
        assert mac.stats.idle_grant_cycles == 2

    def test_partial_burst_resumes_across_slots(self):
        """A burst interrupted by the slot boundary stays grantable later."""
        mac = self._mac(ScriptedAdapter())
        mac.update(1)
        mac.notify_sent(10, 7, 20, is_tail=False, cycle=1)
        mac.update(5)  # WI 20's slot: 10 is blocked mid-packet
        assert not mac.grants(10, 7, 20, False)
        mac.update(9)  # 10's next slot: body flits continue
        assert mac.grants(10, 7, 20, False)
        assert mac.stats.grants >= 1

    def test_everyone_listens(self):
        mac = self._mac(ScriptedAdapter())
        assert mac.intended_receivers() == {10, 20}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self._mac(ScriptedAdapter(), slot_cycles=0)
        with pytest.raises(ValueError):
            self._mac(ScriptedAdapter(), slot_cycles=4, guard_cycles=4)


class TestFdmaMac:
    def _mac(self, adapter, wis=(10, 20, 30)):
        return FdmaMac(0, list(wis), adapter)

    def test_subband_interleaves_by_cycle(self):
        mac = self._mac(ScriptedAdapter())
        owners = []
        for cycle in range(6):
            mac.update(cycle)
            owners.append(mac.current_transmitter())
        assert owners == [10, 20, 30, 10, 20, 30]

    def test_only_subband_owner_may_send(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(1)
        assert mac.grants(20, 1, 30, True)
        assert not mac.grants(10, 1, 30, True)
        assert not mac.grants(30, 1, 10, True)

    def test_burst_counting(self):
        mac = self._mac(ScriptedAdapter())
        mac.update(0)
        mac.notify_sent(10, 5, 20, is_tail=False, cycle=0)
        mac.update(3)
        mac.notify_sent(10, 5, 20, is_tail=True, cycle=3)
        assert mac.stats.grants == 1
        assert mac.stats.flits_transmitted == 2

    def test_interleaved_bursts_count_one_grant_per_wi(self):
        """Concurrent bursts on alternating sub-bands are two grants, not six."""
        mac = self._mac(ScriptedAdapter(), wis=(10, 20))
        for cycle in range(6):
            mac.update(cycle)
            owner = mac.current_transmitter()
            packet = 5 if owner == 10 else 8
            mac.notify_sent(owner, packet, 30, is_tail=cycle >= 4, cycle=cycle)
        assert mac.stats.grants == 2
        assert mac.stats.flits_transmitted == 6

    def test_everyone_listens(self):
        mac = self._mac(ScriptedAdapter())
        assert mac.intended_receivers() == {10, 20, 30}
