"""Tests of the stacked-DRAM memory models."""

import pytest

from repro.memory import (
    DramStack,
    MemoryInterface,
    TsvBus,
    VaultConfig,
    VaultController,
)
from repro.topology import build_multichip_base


class TestVault:
    def test_access_latency_includes_burst(self):
        config = VaultConfig()
        short = config.access_latency_network_cycles(16)
        long = config.access_latency_network_cycles(256)
        assert long > short

    def test_controller_serialises_accesses(self):
        vault = VaultController(0)
        first = vault.access(cycle=0, bytes_transferred=64, is_write=False)
        second = vault.access(cycle=0, bytes_transferred=64, is_write=False)
        assert second > first
        assert vault.reads_serviced == 2

    def test_utilisation_and_reset(self):
        vault = VaultController(0)
        vault.access(0, 64, is_write=True)
        assert 0 < vault.utilisation(10_000) <= 1.0
        vault.reset()
        assert vault.busy_until == 0
        assert vault.writes_serviced == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            VaultConfig(bus_width_bits=0)
        with pytest.raises(ValueError):
            VaultController(-1)


class TestTsvBus:
    def test_transfer_cycles_scale_with_bits(self):
        bus = TsvBus(layers=4, width_bits=128)
        assert bus.transfer_cycles(0) == 0
        assert bus.transfer_cycles(128) == 3
        assert bus.transfer_cycles(256) == 6

    def test_single_layer_stack_has_no_tsv_delay(self):
        assert TsvBus(layers=1).transfer_cycles(1024) == 0

    def test_energy_accounting(self):
        bus = TsvBus()
        assert bus.transfer_energy_pj(1000) > 0
        assert bus.transfer_energy_pj(1000, layers_crossed=0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TsvBus(layers=0)
        with pytest.raises(ValueError):
            TsvBus().transfer_cycles(-1)


class TestDramStack:
    def test_paper_configuration(self):
        stack = DramStack(0)
        assert stack.config.layers == 4
        assert stack.num_vaults == 4
        assert stack.peak_bandwidth_gbps() == pytest.approx(512.0)

    def test_reads_and_writes_complete_in_order_per_vault(self):
        stack = DramStack(0)
        first = stack.service_read(0, 64, cycle=0)
        second = stack.service_read(0, 64, cycle=0)
        other_vault = stack.service_read(1, 64, cycle=0)
        assert second > first
        assert other_vault <= first  # independent channel

    def test_capacity(self):
        assert DramStack(0).config.total_capacity_mib == 4096

    def test_vault_index_bounds(self):
        stack = DramStack(0)
        with pytest.raises(IndexError):
            stack.vault(10)


class TestMemoryInterface:
    def test_maps_every_vault_endpoint(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=4)
        interface = MemoryInterface(system.graph)
        assert interface.num_stacks == 2
        assert interface.total_capacity_mib() == 2 * 4096
        for vault in system.graph.memory_vaults:
            done = interface.service_request(vault.endpoint_id, 64, cycle=0)
            assert done > 0

    def test_unknown_endpoint_rejected(self):
        system = build_multichip_base(1, 4, 1, vaults_per_stack=2)
        interface = MemoryInterface(system.graph)
        with pytest.raises(KeyError):
            interface.service_request(99999, 64, 0)

    def test_reset(self):
        system = build_multichip_base(1, 4, 1, vaults_per_stack=2)
        interface = MemoryInterface(system.graph)
        vault = system.graph.memory_vaults[0].endpoint_id
        first = interface.service_request(vault, 64, 0)
        interface.reset()
        assert interface.service_request(vault, 64, 0) == first
