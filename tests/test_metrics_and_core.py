"""Tests of metrics, comparisons, system configuration and the experiment layer."""

import pytest

from repro.core.comparison import ArchitectureMetrics, compare, percentage_gain
from repro.core.config import Architecture, SystemConfig, paper_1c4m, paper_4c4m, paper_8c4m
from repro.core.architectures import build_comparison_set
from repro.experiments.cli import build_parser
from repro.experiments.common import FIDELITIES, get_fidelity
from repro.metrics import (
    LoadPoint,
    LoadSweepResult,
    default_load_points,
    format_heading,
    format_percentage,
    format_table,
    run_load_sweep,
)
from repro.noc.stats import SimulationResult

from repro.testing import small_system_config


def _result(accepted_flits=0.05, latency=100.0, energy_pj=5000.0, load=0.001):
    """A synthetic SimulationResult with chosen headline metrics."""
    cycles, warmup, cores = 1000, 100, 16
    result = SimulationResult(
        cycles=cycles, warmup_cycles=warmup, num_cores=cores,
        nominal_packet_length_flits=8,
    )
    measured = cycles - warmup
    result.flits_ejected_measured = int(accepted_flits * cores * measured)
    packets = max(1, result.flits_ejected_measured // 8)
    result.packets_delivered_measured = packets
    result.packets_delivered = packets
    result.packets_generated = packets
    result.latencies_cycles = [int(latency)] * packets
    result.packet_energies_pj = [energy_pj] * packets
    result.packet_hops = [4] * packets
    result.energy.link_pj = energy_pj * packets
    result.offered_load_packets_per_core_per_cycle = load
    return result


class TestSimulationResultMetrics:
    def test_bandwidth_conversion(self):
        result = _result(accepted_flits=0.1)
        expected = 0.1 * 32 * 2.5e9 / 1e9
        assert result.bandwidth_gbps_per_core() == pytest.approx(expected, rel=0.01)

    def test_latency_percentile(self):
        result = _result(latency=200)
        assert result.latency_percentile_cycles(50) == 200
        with pytest.raises(ValueError):
            result.latency_percentile_cycles(150)

    def test_summary_keys(self):
        summary = _result().summary()
        assert "bandwidth_gbps_per_core" in summary
        assert "avg_packet_energy_nj" in summary

    def test_system_energy_unbiased_by_survivors(self):
        result = _result(energy_pj=1000.0)
        assert result.system_packet_energy_pj() > 0


class TestLoadSweep:
    def _sweep(self):
        points = [
            LoadPoint(0.001, _result(accepted_flits=0.008, latency=80, load=0.001)),
            LoadPoint(0.002, _result(accepted_flits=0.016, latency=120, load=0.002)),
            LoadPoint(0.004, _result(accepted_flits=0.02, latency=500, load=0.004)),
        ]
        return LoadSweepResult(points=points)

    def test_peak_and_sustainable_bandwidth(self):
        sweep = self._sweep()
        assert sweep.peak_bandwidth_gbps_per_core() >= sweep.sustainable_bandwidth_gbps_per_core()
        assert sweep.sustainable_bandwidth_gbps_per_core() > 0

    def test_latency_curve_and_zero_load(self):
        sweep = self._sweep()
        curve = sweep.latency_curve()
        assert len(curve) == 3
        assert sweep.zero_load_latency_cycles() == pytest.approx(80.0)

    def test_saturation_load_detection(self):
        sweep = self._sweep()
        assert sweep.saturation_load(latency_factor=3.0) == pytest.approx(0.004)

    def test_run_load_sweep_orders_points(self):
        sweep = run_load_sweep(lambda load: _result(load=load), [0.004, 0.001])
        assert sweep.loads == sorted(sweep.loads)

    def test_default_load_points_monotonic(self):
        points = default_load_points()
        assert points == sorted(points)
        assert points[0] < points[-1]
        with pytest.raises(ValueError):
            default_load_points(low=0.1, high=0.01)


class TestComparison:
    def test_percentage_gain_directions(self):
        assert percentage_gain(12.0, 10.0, higher_is_better=True) == pytest.approx(20.0)
        assert percentage_gain(8.0, 10.0, higher_is_better=False) == pytest.approx(20.0)
        assert percentage_gain(10.0, 0.0, higher_is_better=True) == 0.0

    def test_compare_report(self):
        wireless = ArchitectureMetrics("wireless", 12.0, 6.0, 80.0)
        interposer = ArchitectureMetrics("interposer", 10.0, 10.0, 100.0)
        gains = compare(wireless, interposer)
        assert gains.bandwidth_gain_pct == pytest.approx(20.0)
        assert gains.energy_gain_pct == pytest.approx(40.0)
        assert gains.latency_gain_pct == pytest.approx(20.0)
        assert set(gains.as_dict()) == {
            "bandwidth_gain_pct", "energy_gain_pct", "latency_gain_pct"
        }


class TestReportFormatting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_percentage_and_heading(self):
        assert format_percentage(12.345) == "+12.3%"
        assert "=" in format_heading("Title")


class TestSystemConfig:
    def test_paper_naming(self):
        assert paper_4c4m(Architecture.WIRELESS).name == "4C4M (Wireless)"
        assert paper_1c4m(Architecture.INTERPOSER).name == "1C4M (Interposer)"
        assert paper_8c4m(Architecture.SUBSTRATE).name == "8C4M (Substrate)"

    def test_total_cores_constant_across_disintegration(self):
        assert paper_1c4m().total_cores == paper_4c4m().total_cores == paper_8c4m().total_cores == 64

    def test_with_architecture_and_wireless(self):
        config = paper_4c4m(Architecture.WIRELESS)
        interposer = config.with_architecture(Architecture.INTERPOSER)
        assert interposer.architecture == Architecture.INTERPOSER
        tuned = config.with_wireless(num_channels=2)
        assert tuned.network.wireless.num_channels == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_chips=0)
        with pytest.raises(ValueError):
            SystemConfig(cores_per_wi=0)


class TestBuildSystem:
    def test_build_all_architectures(self):
        systems = build_comparison_set(small_system_config())
        assert set(systems) == set(Architecture)
        for architecture, system in systems.items():
            assert system.num_cores == 8
            inventory = system.link_inventory()
            assert inventory.get("mesh", 0) > 0

    def test_wireless_system_reports_area_overhead(self, small_wireless_system):
        assert small_wireless_system.num_wireless_interfaces == 4
        assert small_wireless_system.wireless_area_overhead_mm2() == pytest.approx(1.2)

    def test_wired_systems_have_no_wis(self, small_interposer_system, small_substrate_system):
        assert small_interposer_system.num_wireless_interfaces == 0
        assert small_substrate_system.num_wireless_interfaces == 0

    def test_offchip_link_counts_differ_by_architecture(
        self, small_interposer_system, small_substrate_system, small_wireless_system
    ):
        assert small_substrate_system.offchip_link_count() >= 3
        assert small_interposer_system.offchip_link_count() >= 3
        assert small_wireless_system.offchip_link_count() >= 3


class TestExperimentPlumbing:
    def test_fidelities_available(self):
        assert set(FIDELITIES) == {"fast", "default", "paper"}
        assert get_fidelity("paper").cycles == 10000
        with pytest.raises(KeyError):
            get_fidelity("ludicrous")

    def test_fidelity_simulation_config(self):
        level = get_fidelity("fast")
        assert level.simulation_config.cycles == level.cycles

    def test_cli_parser(self):
        parser = build_parser()
        args = parser.parse_args(["fig2", "--fidelity", "fast"])
        assert args.experiment == "fig2"
        assert args.fidelity == "fast"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])
