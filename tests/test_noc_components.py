"""Unit tests of the simulator building blocks (flits, packets, VCs, links)."""

import pytest

from repro.noc.config import NetworkConfig, WirelessConfig
from repro.noc.flit import FlitType, flit_type_for
from repro.noc.link import LinkCharacteristics, WirelessLinkSettings, characterize_link
from repro.noc.packet import Packet
from repro.noc.switch import Switch
from repro.topology.graph import LinkKind, LinkSpec, SwitchKind, SwitchSpec


def _packet(length=4, route=(0, 1)):
    return Packet(
        packet_id=1,
        src_endpoint=0,
        dst_endpoint=1,
        src_switch=route[0],
        dst_switch=route[-1],
        length_flits=length,
        generation_cycle=0,
        route=list(route),
    )


def _switch(switch_id=0, num_vcs=2, depth=4):
    spec = SwitchSpec(
        switch_id=switch_id,
        kind=SwitchKind.CORE,
        region_id=0,
        grid_x=0,
        grid_y=0,
        position_mm=(0.0, 0.0),
    )
    return Switch(spec, num_vcs=num_vcs, buffer_depth=depth)


class TestFlitsAndPackets:
    def test_flit_type_positions(self):
        assert flit_type_for(0, 4) == FlitType.HEAD
        assert flit_type_for(1, 4) == FlitType.BODY
        assert flit_type_for(3, 4) == FlitType.TAIL
        assert flit_type_for(0, 1) == FlitType.HEAD_TAIL

    def test_flit_type_out_of_range(self):
        with pytest.raises(ValueError):
            flit_type_for(4, 4)
        with pytest.raises(ValueError):
            flit_type_for(0, 0)

    def test_packet_flit_factory(self):
        packet = _packet(length=3)
        head = packet.make_flit(0)
        tail = packet.make_flit(2)
        assert head.is_head and not head.is_tail
        assert tail.is_tail and not tail.is_head

    def test_packet_route_validation(self):
        with pytest.raises(ValueError):
            Packet(0, 0, 1, 0, 2, 4, 0, route=[0, 1])

    def test_packet_latency_accounting(self):
        packet = _packet()
        assert packet.latency_cycles is None
        packet.injection_cycle = 5
        packet.record_ejection(packet.make_flit(3), cycle=50)
        assert packet.delivered
        assert packet.latency_cycles == 50
        assert packet.network_latency_cycles == 45
        assert packet.hop_count == 1

    def test_next_switch_after(self):
        packet = _packet(route=(0, 1, 2))
        assert packet.next_switch_after(0) == 1
        with pytest.raises(ValueError):
            packet.next_switch_after(2)
        with pytest.raises(ValueError):
            packet.next_switch_after(7)


class TestVirtualChannel:
    def _vc(self, capacity=2):
        switch = _switch()
        port = switch.local_input
        return port.vcs[0]

    def test_reserve_deliver_pop_cycle(self):
        vc = self._vc()
        packet = _packet(length=2)
        head = packet.make_flit(0)
        tail = packet.make_flit(1)
        vc.reserve(packet.packet_id, is_head=True)
        vc.deliver(head)
        vc.reserve(packet.packet_id, is_head=False)
        vc.deliver(tail)
        assert vc.occupancy == 2
        assert vc.pop() is head
        assert vc.allocated_packet_id == packet.packet_id
        assert vc.pop() is tail
        # Popping the tail releases ownership.
        assert vc.allocated_packet_id is None
        assert vc.is_free

    def test_reserve_rejects_foreign_body_flit(self):
        vc = self._vc()
        vc.reserve(7, is_head=True)
        with pytest.raises(RuntimeError):
            vc.reserve(8, is_head=False)

    def test_deliver_without_reserve_rejected(self):
        vc = self._vc()
        with pytest.raises(RuntimeError):
            vc.deliver(_packet().make_flit(0))

    def test_overfull_reserve_rejected(self):
        switch = _switch(depth=1)
        vc = switch.local_input.vcs[0]
        vc.reserve(1, is_head=True)
        with pytest.raises(RuntimeError):
            vc.reserve(1, is_head=False)


class TestLinkCharacterisation:
    def _spec(self, kind, length=2.5):
        return LinkSpec(link_id=0, src=0, dst=1, kind=kind, length_mm=length)

    def test_mesh_link(self):
        link = characterize_link(self._spec(LinkKind.MESH))
        assert link.cycles_per_flit == 1
        assert link.latency_cycles >= 3
        assert link.energy_pj_per_flit > 0

    def test_serial_io_is_slowest(self):
        serial = characterize_link(self._spec(LinkKind.SERIAL_IO))
        wide = characterize_link(self._spec(LinkKind.WIDE_IO))
        mesh = characterize_link(self._spec(LinkKind.MESH))
        assert serial.cycles_per_flit > wide.cycles_per_flit == mesh.cycles_per_flit

    def test_wireless_settings_respected(self):
        link = characterize_link(
            self._spec(LinkKind.WIRELESS),
            wireless=WirelessLinkSettings(cycles_per_flit=5, extra_latency_cycles=2),
        )
        assert link.is_wireless
        assert link.cycles_per_flit == 5

    def test_energy_ordering_per_flit(self):
        wireless = characterize_link(self._spec(LinkKind.WIRELESS))
        serial = characterize_link(self._spec(LinkKind.SERIAL_IO))
        wide = characterize_link(self._spec(LinkKind.WIDE_IO))
        assert wireless.energy_pj_per_flit < serial.energy_pj_per_flit
        assert serial.energy_pj_per_flit < wide.energy_pj_per_flit

    def test_invalid_characteristics_rejected(self):
        with pytest.raises(ValueError):
            LinkCharacteristics(
                kind=LinkKind.MESH,
                cycles_per_flit=0,
                latency_cycles=1,
                energy_pj_per_flit=1.0,
            )


class TestSwitchStructure:
    def test_wired_port_pairs(self):
        a = _switch(0)
        b = _switch(1)
        link = characterize_link(
            LinkSpec(link_id=0, src=0, dst=1, kind=LinkKind.MESH, length_mm=1.0)
        )
        a_in, a_out = a.add_wired_port(1, link)
        b_in, b_out = b.add_wired_port(0, link)
        a_out.downstream_port = b_in
        assert a.output_towards(1) is a_out
        assert not a.has_wireless

    def test_wireless_port(self):
        switch = _switch()
        link = characterize_link(
            LinkSpec(link_id=0, src=0, dst=1, kind=LinkKind.WIRELESS)
        )
        wi_in, wi_out = switch.add_wireless_port(link)
        assert switch.has_wireless
        assert switch.output_towards(42) is wi_out
        with pytest.raises(Exception):
            switch.add_wireless_port(link)

    def test_output_towards_missing_neighbor(self):
        switch = _switch()
        with pytest.raises(Exception):
            switch.output_towards(3)

    def test_round_robin_rotates(self):
        switch = _switch(num_vcs=4)
        vcs = switch.local_input.vcs
        output = switch.ejection_port
        first = switch.select_round_robin(output, vcs)
        second = switch.select_round_robin(output, vcs)
        assert first is not second

    def test_network_config_wi_buffer_depth(self):
        token = NetworkConfig(
            packet_length_flits=64, wireless=WirelessConfig(mac="token")
        )
        control = NetworkConfig(
            packet_length_flits=64, wireless=WirelessConfig(mac="control_packet")
        )
        assert token.wi_buffer_depth >= 64
        assert control.wi_buffer_depth < token.wi_buffer_depth

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(virtual_channels=0)
        with pytest.raises(ValueError):
            WirelessConfig(mac="aloha")
        with pytest.raises(ValueError):
            WirelessConfig(num_channels=0)
