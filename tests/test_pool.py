"""Array-backed data-plane tests: pools, flit packing, views, handle leaks.

The pooled core's contract (see :mod:`repro.noc.pool`):

* flit handles pack ``(packet handle, index)`` losslessly and derive
  head/tail arithmetically;
* :class:`PacketView` mirrors the legacy ``Packet`` attribute surface over
  the pooled arrays;
* **no handle ever leaks** — after any run (including faulted runs with
  purged packets), the pool's books (``allocated == freed + live``, free
  list + live = capacity) reconcile exactly with the handles reachable
  from the simulation state (source queues, VC rings, serialisation state,
  in-flight arrivals), and the flit-conservation counters of the fault
  subsystem still hold.  Property-tested over load, seed, and fault
  scenario.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import build_system
from repro.core.config import Architecture
from repro.energy import EnergyAccountant
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import create_fault_plan
from repro.noc.engine import SimulationConfig
from repro.noc.kernel import SimulationKernel
from repro.noc.network import Network
from repro.noc.pool import (
    FLIT_INDEX_BITS,
    FLIT_INDEX_MASK,
    MAX_PACKET_LENGTH_FLITS,
    FlitPool,
    PacketPool,
)
from repro.noc.stats import SimulationResult
from repro.testing import small_system_config
from repro.traffic.registry import create_pattern


def _alloc(pool, pid=0, length=4, route=(0, 1)):
    return pool.alloc(
        pid=pid,
        src_endpoint=0,
        dst_endpoint=1,
        src_switch=route[0],
        dst_switch=route[-1],
        length_flits=length,
        generation_cycle=0,
        route=list(route),
        is_memory_access=False,
        is_reply=False,
        measured=True,
        traffic_class="data",
    )


class TestFlitPacking:
    def test_roundtrip(self):
        pool = PacketPool()
        handle = _alloc(pool, length=7)
        flits = pool.flits
        for index in range(7):
            flit = FlitPool.handle(handle, index)
            assert FlitPool.packet_of(flit) == handle
            assert FlitPool.index_of(flit) == index
            assert FlitPool.is_head(flit) == (index == 0)
            assert flits.is_tail(flit) == (index == 6)

    def test_single_flit_packet_is_head_and_tail(self):
        pool = PacketPool()
        handle = _alloc(pool, length=1)
        flit = FlitPool.handle(handle, 0)
        assert FlitPool.is_head(flit)
        assert pool.flits.is_tail(flit)

    def test_packing_constants_consistent(self):
        assert FLIT_INDEX_MASK == (1 << FLIT_INDEX_BITS) - 1
        assert MAX_PACKET_LENGTH_FLITS == FLIT_INDEX_MASK + 1

    def test_overlong_packet_rejected(self):
        pool = PacketPool()
        with pytest.raises(ValueError):
            _alloc(pool, length=MAX_PACKET_LENGTH_FLITS + 1)
        with pytest.raises(ValueError):
            _alloc(pool, length=0)

    def test_bad_route_rejected(self):
        pool = PacketPool()
        with pytest.raises(ValueError):
            pool.alloc(
                pid=0,
                src_endpoint=0,
                dst_endpoint=1,
                src_switch=0,
                dst_switch=2,
                length_flits=4,
                generation_cycle=0,
                route=[0, 1],
                is_memory_access=False,
                is_reply=False,
                measured=True,
                traffic_class="data",
            )


class TestPacketPoolLifecycle:
    def test_alloc_free_recycles_handles(self):
        pool = PacketPool()
        first = _alloc(pool, pid=1)
        pool.free(first)
        second = _alloc(pool, pid=2)
        assert second == first  # LIFO recycling
        assert pool.allocated_total == 2
        assert pool.freed_total == 1
        assert pool.live_count == 1
        assert len(pool.free_list) + pool.live_count == pool.capacity

    def test_pids_survive_handle_recycling(self):
        pool = PacketPool()
        first = _alloc(pool, pid=11)
        pool.free(first)
        second = _alloc(pool, pid=12)
        assert pool.pid[second] == 12

    def test_view_mirrors_legacy_packet_surface(self):
        pool = PacketPool()
        handle = _alloc(pool, pid=9, length=3, route=(0, 1, 4))
        view = pool.view(handle)
        assert view.packet_id == 9
        assert view.length_flits == 3
        assert view.route == [0, 1, 4]
        assert view.hop_count == 2
        assert view.next_switch_after(1) == 4
        assert not view.delivered
        assert view.latency_cycles is None
        view.add_energy(2.5)
        view.add_energy(1.5)
        assert view.energy_pj == 4.0
        pool.ejection_cycle[handle] = 50
        pool.injection_cycle[handle] = 5
        assert view.delivered
        assert view.latency_cycles == 50
        assert view.network_latency_cycles == 45
        with pytest.raises(ValueError):
            view.next_switch_after(4)
        with pytest.raises(ValueError):
            view.next_switch_after(99)


def _run_kernel(architecture, rate, seed, cycles, faults=None, fault_rate=0.0):
    """Run one simulation through the kernel, returning (state, result)."""
    config = small_system_config(architecture)
    system = build_system(config)
    network = Network(system.topology, config.network)
    accountant = EnergyAccountant(technology=config.network.technology)
    for fabric in network.fabrics:
        fabric.bind_accountant(accountant)
    result = SimulationResult(
        cycles=cycles, warmup_cycles=cycles // 4, num_cores=8
    )
    traffic = create_pattern(
        "uniform",
        system.topology,
        injection_rate=rate,
        memory_access_fraction=0.25,
        seed=seed,
    )
    injector = None
    if faults is not None and faults != "none":
        plan = create_fault_plan(
            faults,
            system.topology,
            fault_rate=fault_rate,
            seed=seed,
            cycles=cycles,
        )
        if not plan.is_empty:
            injector = FaultInjector(plan, network, system.router, result)
    kernel = SimulationKernel(
        network=network,
        router=system.router,
        traffic=traffic,
        accountant=accountant,
        result=result,
        config=SimulationConfig(cycles=cycles, warmup_cycles=cycles // 4),
        net_config=config.network,
        fault_injector=injector,
    )
    traffic.reset()
    try:
        state = kernel.run()
    finally:
        if injector is not None:
            injector.restore()
    result.flits_residual_end = state.residual_flits()
    return state, result


def reachable_handles(state):
    """Every pool handle reachable from the live simulation state."""
    reachable = set()
    for queue in state.source_queues.values():
        reachable.update(queue)
    for switch in state.network.switches.values():
        for port in switch.input_port_list:
            for vc in port.vcs:
                if vc.source_packet is not None:
                    reachable.add(vc.source_packet)
                for flit in vc.buffer:
                    reachable.add(flit >> FLIT_INDEX_BITS)
    for entries in state.arrivals.values():
        for _, flit in entries:
            reachable.add(flit >> FLIT_INDEX_BITS)
    return reachable


def assert_no_handle_leaks(state, result):
    """The pool's books reconcile exactly with the reachable handles."""
    pool = state.pool
    # Books are internally consistent.
    assert pool.allocated_total == pool.freed_total + pool.live_count
    assert len(pool.free_list) + pool.live_count == pool.capacity
    assert len(set(pool.free_list)) == len(pool.free_list)
    # Every live handle is reachable from the simulation state and every
    # reachable handle is live: nothing leaked, nothing freed early.
    assert set(pool.live_handles()) == reachable_handles(state)
    # The pool never allocates more records than packets that entered a
    # source queue.
    assert pool.allocated_total <= result.packets_generated
    # PR 3's flit-conservation counters still hold over the pooled core.
    assert result.flits_injected == (
        result.flits_ejected_total
        + result.flits_residual_end
        + result.flits_dropped_unroutable
    )


class TestHandleConservation:
    def test_clean_run_frees_every_delivered_packet(self):
        state, result = _run_kernel(Architecture.SUBSTRATE, 0.03, seed=3, cycles=400)
        assert result.packets_delivered > 0
        assert state.pool.freed_total == result.packets_delivered
        assert_no_handle_leaks(state, result)

    def test_wireless_run_reconciles(self):
        state, result = _run_kernel(Architecture.WIRELESS, 0.05, seed=5, cycles=400)
        assert result.packets_delivered > 0
        assert_no_handle_leaks(state, result)

    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.sampled_from([0.0, 0.01, 0.05, 0.15]),
        seed=st.integers(min_value=0, max_value=10_000),
        faults=st.sampled_from(["none", "random-links"]),
        fault_rate=st.sampled_from([0.1, 0.3]),
    )
    def test_property_pool_never_leaks_handles(self, rate, seed, faults, fault_rate):
        """Property: free list + live + delivered reconcile on every run.

        Sweeps load (idle through congested), seed, and fault injection
        (including runs that purge packets and drop queued handles), and
        checks the full reconciliation after each: pool books consistent,
        live handles exactly the reachable ones, flit conservation intact.
        """
        state, result = _run_kernel(
            Architecture.SUBSTRATE,
            rate,
            seed=seed,
            cycles=300,
            faults=faults,
            fault_rate=fault_rate,
        )
        assert_no_handle_leaks(state, result)


class TestConfigCeiling:
    def test_oversized_packet_length_rejected_at_config_time(self):
        """A jumbo packet config fails at construction, not mid-run."""
        from repro.noc.config import NetworkConfig

        with pytest.raises(ValueError, match="packed flit index"):
            NetworkConfig(packet_length_flits=MAX_PACKET_LENGTH_FLITS + 1)
        # The ceiling itself is a valid configuration.
        config = NetworkConfig(packet_length_flits=MAX_PACKET_LENGTH_FLITS)
        assert config.packet_length_flits == MAX_PACKET_LENGTH_FLITS
