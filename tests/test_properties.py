"""Property-based tests (hypothesis) on routing, topology and flow-control invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.architectures import build_system
from repro.core.config import Architecture, SystemConfig
from repro.noc.config import NetworkConfig, WirelessConfig
from repro.noc.engine import SimulationConfig, Simulator
from repro.routing import ShortestPathRouter, validate_route
from repro.routing.xy import manhattan_distance
from repro.topology import build_multichip_base, apply_wireless_overlay
from repro.topology.geometry import mesh_shape_for_cores
from repro.topology.wireless_overlay import WirelessOverlayConfig
from repro.traffic.uniform import UniformRandomTraffic


@given(num_cores=st.integers(min_value=1, max_value=128))
def test_mesh_shape_factorisation(num_cores):
    cols, rows = mesh_shape_for_cores(num_cores)
    assert cols * rows == num_cores
    assert rows >= 1 and cols >= 1


@given(
    num_chips=st.integers(min_value=1, max_value=3),
    cores_per_chip=st.sampled_from([2, 4, 6, 8]),
    stacks=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_multichip_base_structure(num_chips, cores_per_chip, stacks):
    system = build_multichip_base(num_chips, cores_per_chip, stacks, vaults_per_stack=2)
    graph = system.graph
    assert len(graph.cores) == num_chips * cores_per_chip
    assert len(graph.memory_vaults) == stacks * 2
    assert graph.num_switches == num_chips * cores_per_chip + stacks
    # Grid coordinates must be unique (needed by XY routing).
    graph.grid_index()


@given(
    num_chips=st.integers(min_value=1, max_value=3),
    cores_per_chip=st.sampled_from([4, 8]),
    stacks=st.integers(min_value=1, max_value=3),
    cores_per_wi=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=15, deadline=None)
def test_wireless_routes_always_valid(num_chips, cores_per_chip, stacks, cores_per_wi):
    system = build_multichip_base(num_chips, cores_per_chip, stacks, vaults_per_stack=2)
    apply_wireless_overlay(system, WirelessOverlayConfig(cores_per_wi=cores_per_wi))
    graph = system.graph
    graph.validate()
    router = ShortestPathRouter(graph)
    switches = [s.switch_id for s in graph.switches]
    for src in switches[:: max(1, len(switches) // 5)]:
        for dst in switches[:: max(1, len(switches) // 5)]:
            route = router.route(src, dst)
            validate_route(graph, route)
            assert route[0] == src and route[-1] == dst


@given(
    cores=st.sampled_from([4, 9, 16]),
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)),
        min_size=1,
        max_size=10,
    ),
)
@settings(max_examples=25, deadline=None)
def test_single_chip_routes_are_minimal(cores, pairs):
    system = build_multichip_base(1, cores, 0)
    graph = system.graph
    router = ShortestPathRouter(graph)
    n = graph.num_switches
    for a, b in pairs:
        src, dst = a % n, b % n
        route = router.route(src, dst)
        assert len(route) - 1 == manhattan_distance(graph, src, dst)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    injection=st.floats(min_value=0.0, max_value=0.2),
    mac=st.sampled_from(["control_packet", "token"]),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulation_invariants_hold_for_random_loads(seed, injection, mac):
    """Flit conservation, non-negative energy and no stalls for random workloads."""
    config = SystemConfig(
        architecture=Architecture.WIRELESS,
        num_chips=2,
        cores_per_chip=4,
        num_memory_stacks=1,
        vaults_per_stack=2,
        cores_per_wi=4,
        total_processing_area_mm2=50.0,
        network=NetworkConfig(
            virtual_channels=2,
            buffer_depth_flits=4,
            packet_length_flits=4,
            wireless=WirelessConfig(mac=mac, num_channels=1),
        ),
    )
    system = build_system(config)
    traffic = UniformRandomTraffic(
        system.topology,
        injection_rate=injection,
        memory_access_fraction=0.25,
        seed=seed,
    )
    simulator = Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=config.network,
        simulation_config=SimulationConfig(cycles=250, warmup_cycles=50),
    )
    result = simulator.run()
    assert not result.stalled
    assert result.flits_ejected_measured <= result.flits_injected
    assert result.packets_delivered <= result.packets_generated <= result.packets_offered
    assert result.energy.total_pj >= 0
    for latency in result.latencies_cycles:
        assert latency >= config.network.packet_length_flits - 1
