"""Tests of the routing algorithms and forwarding tables."""

import pytest

from repro.core.architectures import build_system
from repro.core.config import Architecture
from repro.routing import (
    ForwardingTable,
    MinimalHopRouter,
    RoutingError,
    ShortestPathRouter,
    SpanningTreeRouter,
    TableRouter,
    is_xy_ordered,
    link_kinds_on_route,
    manhattan_distance,
    validate_route,
    wireless_hop_count,
)
from repro.topology import LinkKind, build_multichip_base, apply_wireless_overlay
from repro.topology.wireless_overlay import WirelessOverlayConfig

from repro.testing import small_system_config


def _wireless_topology():
    system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
    apply_wireless_overlay(system, WirelessOverlayConfig(cores_per_wi=4))
    return system.graph


def _mesh_topology():
    system = build_multichip_base(1, 16, 0)
    return system.graph


class TestShortestPathRouter:
    def test_routes_are_valid_everywhere(self):
        graph = _wireless_topology()
        router = ShortestPathRouter(graph)
        switches = [s.switch_id for s in graph.switches]
        for src in switches[:6]:
            for dst in switches:
                route = router.route(src, dst)
                validate_route(graph, route)
                assert route[0] == src and route[-1] == dst

    def test_intra_chip_routes_are_xy_and_minimal(self):
        graph = _mesh_topology()
        router = ShortestPathRouter(graph)
        switches = [s.switch_id for s in graph.switches]
        for src in switches[:4]:
            for dst in switches:
                route = router.route(src, dst)
                assert len(route) - 1 == manhattan_distance(graph, src, dst)
                assert is_xy_ordered(graph, route)

    def test_inter_chip_routes_use_wireless(self):
        graph = _wireless_topology()
        router = ShortestPathRouter(graph)
        core_a = graph.cores[0]
        core_b = graph.cores[-1]
        route = router.route(
            graph.endpoint(core_a.endpoint_id).switch_id,
            graph.endpoint(core_b.endpoint_id).switch_id,
        )
        assert wireless_hop_count(graph, route) == 1

    def test_route_is_cached_and_stable(self):
        graph = _wireless_topology()
        router = ShortestPathRouter(graph)
        a = router.route(0, 5)
        b = router.route(0, 5)
        assert a == b

    def test_route_weight_and_hops(self):
        graph = _mesh_topology()
        router = ShortestPathRouter(graph)
        assert router.hop_count(0, 0) == 0
        assert router.route_weight(0, 1) == pytest.approx(1.0)

    def test_minimal_hop_router_ignores_link_costs(self):
        graph = _wireless_topology()
        weighted = ShortestPathRouter(graph)
        minimal = MinimalHopRouter(graph)
        switches = [s.switch_id for s in graph.switches]
        for src in switches[:3]:
            for dst in switches[:8]:
                assert minimal.hop_count(src, dst) <= weighted.hop_count(src, dst)


class TestSpanningTreeRouter:
    def test_tree_routes_valid_and_loop_free(self):
        graph = _wireless_topology()
        router = SpanningTreeRouter(graph)
        switches = [s.switch_id for s in graph.switches]
        for src in switches[:5]:
            for dst in switches:
                route = router.route(src, dst)
                validate_route(graph, route)

    def test_tree_edges_form_a_tree(self):
        graph = _mesh_topology()
        router = SpanningTreeRouter(graph)
        edges = router.tree_edges()
        assert len(edges) == graph.num_switches - 1

    def test_tree_routes_never_shorter_than_shortest_path(self):
        graph = _wireless_topology()
        tree = SpanningTreeRouter(graph)
        shortest = ShortestPathRouter(graph)
        for src in (0, 3):
            for dst in (5, 9):
                assert tree.route_weight(src, dst) >= shortest.route_weight(src, dst) - 1e-9

    def test_parent_of_unknown_switch(self):
        graph = _mesh_topology()
        router = SpanningTreeRouter(graph)
        with pytest.raises(RoutingError):
            router.parent(9999)


class TestForwardingTables:
    def test_table_router_is_consistent(self):
        graph = _wireless_topology()
        router = TableRouter(graph)
        table = ForwardingTable.build(router)
        assert table.conflicts == 0
        table.validate()

    def test_table_walk_matches_route(self):
        graph = _mesh_topology()
        router = TableRouter(graph)
        table = ForwardingTable.build(router)
        assert table.walk(0, 7) == router.route(0, 7)

    def test_table_size_reporting(self):
        graph = _mesh_topology()
        table = ForwardingTable.build(TableRouter(graph))
        assert table.total_entries() == graph.num_switches * (graph.num_switches - 1)
        assert all(
            count == graph.num_switches - 1
            for count in table.entries_per_switch().values()
        )

    def test_lookup_at_destination_rejected(self):
        graph = _mesh_topology()
        table = ForwardingTable.build(TableRouter(graph))
        with pytest.raises(RoutingError):
            table.lookup(3, 3)


class TestRouteValidation:
    def test_empty_route_rejected(self):
        graph = _mesh_topology()
        with pytest.raises(RoutingError):
            validate_route(graph, [])

    def test_route_with_missing_link_rejected(self):
        graph = _mesh_topology()
        with pytest.raises(RoutingError):
            validate_route(graph, [0, 5])

    def test_route_with_revisit_rejected(self):
        graph = _mesh_topology()
        with pytest.raises(RoutingError):
            validate_route(graph, [0, 1, 0])

    def test_link_kinds_on_route(self):
        graph = _wireless_topology()
        router = ShortestPathRouter(graph)
        wis = [s.switch_id for s in graph.wireless_switches]
        route = router.route(wis[0], wis[-1])
        kinds = link_kinds_on_route(graph, route)
        assert LinkKind.WIRELESS in kinds


class TestArchitectureRouting:
    @pytest.mark.parametrize(
        "architecture",
        [Architecture.SUBSTRATE, Architecture.INTERPOSER, Architecture.WIRELESS],
    )
    def test_all_endpoint_pairs_routable(self, architecture):
        system = build_system(small_system_config(architecture))
        graph = system.topology
        router = system.router
        endpoints = graph.endpoints
        for src in endpoints[:4]:
            for dst in endpoints:
                if src.switch_id == dst.switch_id:
                    continue
                route = router.route(src.switch_id, dst.switch_id)
                validate_route(graph, route)

    def test_wireless_architecture_has_no_wired_offchip_links(self):
        system = build_system(small_system_config(Architecture.WIRELESS))
        offchip_kinds = {link.kind for link in system.topology.inter_region_links()}
        assert offchip_kinds == {LinkKind.WIRELESS}
