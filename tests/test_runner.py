"""Tests of the parallel experiment orchestration layer.

Covers the hard guarantees the runner makes: parallel execution is
bit-identical to serial execution, cached results are bit-identical to
fresh ones, cache keys track every result-affecting parameter, and task
seeding is deterministic.
"""

from __future__ import annotations

import pytest

from repro.core.comparison import ArchitectureMetrics
from repro.core.config import Architecture
from repro.core.framework import MultichipSimulation
from repro.experiments.common import Fidelity
from repro.experiments.cli import build_parser, runner_from_args
from repro.parallel.runner import (
    ExperimentRunner,
    SimulationTask,
    application_task,
    assemble_sweep,
    execute_task,
    replicated_tasks,
    sweep_tasks,
    uniform_task,
)
from repro.metrics.saturation import LoadPointSummary, SweepSummary
from repro.noc.engine import SimulationConfig
from repro.parallel.cache import ResultCache
from repro.parallel.executor import run_tasks
from repro.parallel.hashing import canonical_json, stable_hash
from repro.testing import small_system_config
from repro.traffic.rng import derive_seed

#: A deliberately tiny fidelity so each task simulates in well under a second.
TINY = Fidelity(
    name="fast",
    cycles=300,
    warmup_cycles=60,
    load_points=(0.002, 0.004),
    applications=("radix",),
)


def _tiny_tasks(architecture=Architecture.WIRELESS):
    config = small_system_config(architecture)
    tasks = sweep_tasks(config, TINY, memory_access_fraction=0.2)
    tasks.append(application_task(config, TINY, "radix", rate_scale=0.25))
    return config, tasks


class TestDeterministicSeeding:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_decorrelates_components(self):
        seeds = {
            derive_seed(7),
            derive_seed(7, "a"),
            derive_seed(7, "b"),
            derive_seed(8, "a"),
            derive_seed(7, "a", 1),
        }
        assert len(seeds) == 5

    def test_replicated_tasks_are_stable_and_distinct(self):
        config, tasks = _tiny_tasks()
        replicas = replicated_tasks(tasks[0], 3)
        assert replicas[0] == tasks[0]
        assert len({t.seed for t in replicas}) == 3
        assert replicated_tasks(tasks[0], 3) == replicas
        with pytest.raises(ValueError):
            replicated_tasks(tasks[0], 0)


class TestCacheKeys:
    def test_equal_tasks_share_a_key(self):
        config, _ = _tiny_tasks()
        a = uniform_task(config, TINY, load=0.002)
        b = uniform_task(config, TINY, load=0.002)
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_every_parameter_changes_the_key(self):
        config, _ = _tiny_tasks()
        base = uniform_task(config, TINY, load=0.002)
        variants = [
            uniform_task(config, TINY, load=0.004),
            uniform_task(config, TINY, load=0.002, seed=99),
            uniform_task(config, TINY, load=0.002, memory_access_fraction=0.4),
            uniform_task(
                small_system_config(Architecture.INTERPOSER), TINY, load=0.002
            ),
            application_task(config, TINY, "radix"),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})

    def test_task_validation(self):
        config, _ = _tiny_tasks()
        with pytest.raises(ValueError):
            SimulationTask(kind="bogus", config=config, cycles=100, warmup_cycles=10, seed=1)
        with pytest.raises(ValueError):
            uniform_task(config, TINY, load=-0.001)
        with pytest.raises(ValueError):
            application_task(config, TINY, "")

    def test_zero_load_point_is_allowed(self):
        """The serial path supported load 0 (true zero-load latency); so must tasks."""
        config, _ = _tiny_tasks()
        summary = LoadPointSummary.from_dict(
            execute_task(uniform_task(config, TINY, load=0.0))
        )
        assert summary.offered_load == 0.0
        assert summary.acceptance_ratio() == 1.0

    def test_summary_line_reports_cache_state(self, tmp_path):
        assert "cache=on" in ExperimentRunner(cache_dir=tmp_path).summary_line()
        assert "cache=off" in ExperimentRunner().summary_line()


class TestParallelEqualsSerial:
    def test_jobs4_results_bit_identical_to_jobs1(self):
        _, tasks = _tiny_tasks()
        serial = ExperimentRunner(jobs=1).run(tasks)
        parallel = ExperimentRunner(jobs=4).run(tasks)
        assert set(serial) == set(parallel)
        for task in tasks:
            assert serial[task].as_dict() == parallel[task].as_dict()

    def test_executor_preserves_input_order(self):
        _, tasks = _tiny_tasks()
        payloads = run_tasks(execute_task, tasks, jobs=2)
        for task, payload in zip(tasks, payloads):
            assert payload == execute_task(task)

    def test_runner_path_matches_legacy_serial_sweep(self):
        """The task runner reproduces the direct serial sweep bit for bit."""
        config = small_system_config(Architecture.WIRELESS)
        simulation = MultichipSimulation.from_config(
            config, SimulationConfig(cycles=TINY.cycles, warmup_cycles=TINY.warmup_cycles)
        )
        legacy = simulation.sweep_uniform(
            loads=list(TINY.load_points), memory_access_fraction=0.2, seed=TINY.seed
        )
        legacy_metrics = ArchitectureMetrics.from_sweep(config.name, legacy)
        legacy_summary = SweepSummary.from_load_sweep(legacy)

        runner = ExperimentRunner(jobs=2)
        tasks = sweep_tasks(config, TINY, memory_access_fraction=0.2)
        summary = assemble_sweep(runner.run(tasks), tasks)
        metrics = ArchitectureMetrics.from_sweep_summary(config.name, summary)

        assert summary.as_dict() == legacy_summary.as_dict()
        assert metrics == legacy_metrics
        assert summary.latency_curve() == legacy.latency_curve()


class TestResultCache:
    def test_cache_miss_then_hit_skips_simulation(self, tmp_path):
        _, tasks = _tiny_tasks()
        first = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        cold = first.run(tasks)
        assert first.cache_misses == len(tasks)
        assert first.tasks_executed == len(tasks)
        assert first.cache_hits == 0

        second = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        warm = second.run(tasks)
        assert second.cache_hits == len(tasks)
        assert second.tasks_executed == 0
        for task in tasks:
            assert warm[task].as_dict() == cold[task].as_dict()

    def test_use_cache_false_never_touches_disk(self, tmp_path):
        _, tasks = _tiny_tasks()
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path, use_cache=False)
        runner.run(tasks[:1])
        assert list(tmp_path.iterdir()) == []

    def test_duplicate_tasks_simulated_once(self):
        _, tasks = _tiny_tasks()
        runner = ExperimentRunner(jobs=1)
        runner.run([tasks[0], tasks[0], tasks[0]])
        assert runner.tasks_executed == 1

    def test_wrong_shaped_entry_is_a_miss(self, tmp_path):
        """Valid JSON with the wrong shape must recompute, not crash."""
        import json

        _, tasks = _tiny_tasks()
        cache = ResultCache(tmp_path)
        key = tasks[0].cache_key()
        for bogus in ({"result": []}, {"result": {}}, {"unrelated": 1}, []):
            cache.path_for(key).write_text(json.dumps(bogus), encoding="utf-8")
            runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
            out = runner.run(tasks[:1])
            assert runner.tasks_executed == 1
            assert out[tasks[0]].packets_delivered >= 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        _, tasks = _tiny_tasks()
        cache = ResultCache(tmp_path)
        key = tasks[0].cache_key()
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run(tasks[:1])
        assert runner.tasks_executed == 1
        assert cache.get(key) is not None

    def test_cache_roundtrip_preserves_summary(self, tmp_path):
        _, tasks = _tiny_tasks()
        payload = execute_task(tasks[0])
        cache = ResultCache(tmp_path)
        cache.put("k", {"result": payload})
        restored = LoadPointSummary.from_dict(cache.get("k")["result"])
        assert restored.as_dict() == payload

    def test_invalid_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).path_for("../escape")


class TestCliFlags:
    def test_parser_accepts_orchestration_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig2", "--fidelity", "fast", "--jobs", "4", "--no-cache", "-q"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        runner = runner_from_args(args)
        assert runner.jobs == 4
        assert runner.cache is None

    def test_parser_defaults_enable_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = build_parser().parse_args(["fig3"])
        assert args.jobs == 1
        runner = runner_from_args(args)
        assert runner.cache is not None
