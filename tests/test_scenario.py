"""Tests of the declarative scenario layer: schema, round-trips, compiler.

The spec validator promises *field-path errors* — every malformed document
raises :class:`ScenarioError` naming the dotted path of the offending
field, never a bare ``KeyError``/``TypeError`` from deep inside the
loader — and *stable round-trips* — ``parse(spec.to_dict()) == spec`` so
documents can be normalised, stored and re-loaded without drift.  The
compiler promises to resolve every name through the matching registry and
to expand fidelity sentinels exactly like the figure experiments do.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import Architecture, SystemConfig, paper_8c4m
from repro.experiments.common import get_fidelity
from repro.scenario import (
    ScenarioError,
    compile_scenario,
    dump_scenario,
    load_scenario,
    loads_scenario,
    parse_scenario,
    scenario_fidelity,
    system_config,
)
from repro.scenario.spec import FaultSpec, SystemSpec, TrafficSpec


def minimal_document(**extra):
    """The smallest valid document, extendable per test."""
    raw = {
        "name": "unit",
        "fidelity": "fast",
        "systems": [{"architecture": "wireless"}],
        "traffic": {"kind": "synthetic", "loads": [0.002]},
    }
    raw.update(extra)
    return raw


# ----------------------------------------------------------------------
# Round-trip stability.
# ----------------------------------------------------------------------


ROUND_TRIP_DOCUMENTS = [
    minimal_document(),
    minimal_document(
        description="everything dialled in",
        fidelity={"level": "fast", "cycles": 400, "warmup_cycles": 100, "seed": 11},
        systems=[
            {
                "architecture": "wireless",
                "preset": "8C4M",
                "label": "big",
                "cores_per_wi": 8,
                "network": {"virtual_channels": 2, "packet_length_flits": 4},
                "wireless": {"mac": "token", "num_channels": 3},
            },
            {"architecture": "substrate", "num_chips": 1, "cores_per_chip": 16},
        ],
        traffic={
            "kind": "synthetic",
            "pattern": "transpose",
            "memory_fractions": [0.0, 0.4],
            "loads": [0.001, 0.004],
        },
        macs=["", "tdma"],
        channels=[1, 2],
        faults={"scenario": "random-links", "rates": [0.0, 0.2]},
    ),
    minimal_document(
        traffic={"kind": "application", "applications": ["radix"], "rate_scale": 0.25},
    ),
    minimal_document(traffic={"kind": "synthetic", "loads": "saturation-study"}, macs="all"),
    minimal_document(faults={"scenario": "cascading", "rate": 0.3}),
]


@pytest.mark.parametrize("raw", ROUND_TRIP_DOCUMENTS, ids=lambda raw: str(raw)[:40])
def test_round_trip_is_stable(raw):
    """parse -> to_dict -> parse reaches a fixed point (same spec, same doc)."""
    spec = parse_scenario(raw)
    canonical = spec.to_dict()
    reparsed = parse_scenario(canonical)
    assert reparsed == spec
    assert reparsed.to_dict() == canonical
    # ... and the compiled task lists are identical, keys and all.
    assert compile_scenario(reparsed) == compile_scenario(spec)


@pytest.mark.parametrize("raw", ROUND_TRIP_DOCUMENTS, ids=lambda raw: str(raw)[:40])
def test_json_dump_round_trips(raw):
    spec = parse_scenario(raw)
    text = dump_scenario(spec, format="json")
    assert parse_scenario(json.loads(text)) == spec


def test_yaml_dump_round_trips():
    yaml = pytest.importorskip("yaml")
    spec = parse_scenario(ROUND_TRIP_DOCUMENTS[1])
    text = dump_scenario(spec, format="yaml")
    assert parse_scenario(yaml.safe_load(text)) == spec


def test_load_scenario_reads_json_and_yaml(tmp_path):
    spec = parse_scenario(minimal_document())
    json_path = tmp_path / "scenario.json"
    json_path.write_text(dump_scenario(spec, format="json"), encoding="utf-8")
    assert load_scenario(str(json_path)) == spec
    pytest.importorskip("yaml")
    yaml_path = tmp_path / "scenario.yaml"
    yaml_path.write_text(dump_scenario(spec, format="yaml"), encoding="utf-8")
    assert load_scenario(str(yaml_path)) == spec


def test_load_scenario_missing_file_is_a_scenario_error(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read scenario file"):
        load_scenario(str(tmp_path / "nope.yaml"))


def test_loads_scenario_reports_broken_json():
    with pytest.raises(ScenarioError, match="invalid JSON"):
        loads_scenario("{not json", format="json")


# ----------------------------------------------------------------------
# Field-path validation errors.  Every case must raise ScenarioError (a
# ValueError) whose message leads with the dotted field path — never a
# bare KeyError/TypeError.
# ----------------------------------------------------------------------


INVALID_DOCUMENTS = [
    # (document, expected field path in the error)
    (["not", "a", "mapping"], ""),
    ({"fidelity": "fast"}, "name"),
    (minimal_document(name=""), "name"),
    (minimal_document(name=7), "name"),
    (minimal_document(bogus=1), "bogus"),
    (minimal_document(fidelity="warp-speed"), "fidelity"),
    (minimal_document(fidelity={"level": "fast", "cycles": 0}), "fidelity.cycles"),
    (
        minimal_document(fidelity={"cycles": 100, "warmup_cycles": 100}),
        "fidelity.warmup_cycles",
    ),
    (minimal_document(fidelity={"seed": "x"}), "fidelity.seed"),
    ({"name": "u", "traffic": {"kind": "synthetic"}}, "systems"),
    (minimal_document(systems=[]), "systems"),
    (minimal_document(systems="wireless"), "systems"),
    (minimal_document(systems=[{}]), "systems[0].architecture"),
    (minimal_document(systems=[{"architecture": "hovercraft"}]), "systems[0].architecture"),
    (
        minimal_document(
            systems=[{"architecture": "wireless"}, {"architecture": "wireless", "preset": "9C9M"}]
        ),
        "systems[1].preset",
    ),
    (
        minimal_document(systems=[{"architecture": "wireless", "num_chips": "four"}]),
        "systems[0].num_chips",
    ),
    (
        minimal_document(systems=[{"architecture": "wireless", "warp_drive": True}]),
        "systems[0].warp_drive",
    ),
    (
        minimal_document(
            systems=[{"architecture": "wireless", "network": {"virtual_channels": 2.5}}]
        ),
        "systems[0].network.virtual_channels",
    ),
    (
        minimal_document(systems=[{"architecture": "wireless", "network": {"vc": 2}}]),
        "systems[0].network.vc",
    ),
    (
        minimal_document(
            systems=[{"architecture": "wireless", "wireless": {"mac": "aloha"}}]
        ),
        "systems[0].wireless.mac",
    ),
    (
        minimal_document(
            systems=[{"architecture": "wireless", "wireless": {"sleepy_receivers": "yes"}}]
        ),
        "systems[0].wireless.sleepy_receivers",
    ),
    ({"name": "u", "systems": [{"architecture": "wireless"}]}, "traffic"),
    (minimal_document(traffic={"kind": "telepathy"}), "traffic.kind"),
    (minimal_document(traffic={"kind": "synthetic", "pattern": "zigzag"}), "traffic.pattern"),
    (
        minimal_document(traffic={"kind": "synthetic", "loads": [0.002], "rate_scale": 1.0}),
        "traffic.rate_scale",
    ),
    (minimal_document(traffic={"kind": "synthetic", "loads": []}), "traffic.loads"),
    (minimal_document(traffic={"kind": "synthetic", "loads": "warp"}), "traffic.loads"),
    (minimal_document(traffic={"kind": "synthetic", "loads": [-0.1]}), "traffic.loads[0]"),
    (
        minimal_document(traffic={"kind": "synthetic", "loads": [0.001, "x"]}),
        "traffic.loads[1]",
    ),
    (
        minimal_document(
            traffic={"kind": "synthetic", "loads": [0.001], "memory_fractions": [1.5]}
        ),
        "traffic.memory_fractions[0]",
    ),
    (
        minimal_document(traffic={"kind": "application", "applications": ["doom"]}),
        "traffic.applications[0]",
    ),
    (
        minimal_document(traffic={"kind": "application", "applications": []}),
        "traffic.applications",
    ),
    (
        minimal_document(traffic={"kind": "application", "rate_scale": 0.0}),
        "traffic.rate_scale",
    ),
    (
        minimal_document(traffic={"kind": "application", "loads": [0.001]}),
        "traffic.loads",
    ),
    (minimal_document(macs="every"), "macs"),
    (minimal_document(macs=[]), "macs"),
    (minimal_document(macs=["csma"]), "macs[0]"),
    (minimal_document(macs=[3]), "macs[0]"),
    (
        minimal_document(
            traffic={"kind": "application", "applications": ["radix"]}, macs=["token"]
        ),
        "macs",
    ),
    (minimal_document(channels="lots"), "channels"),
    (minimal_document(channels=[]), "channels"),
    (minimal_document(channels=[0]), "channels[0]"),
    (minimal_document(channels=[1.5]), "channels[0]"),
    (minimal_document(faults={"scenario": "gremlins"}), "faults.scenario"),
    (minimal_document(faults={"scenario": "random-links", "rates": []}), "faults.rates"),
    (
        minimal_document(faults={"scenario": "random-links", "rates": [1.5]}),
        "faults.rates[0]",
    ),
    (
        minimal_document(faults={"scenario": "random-links", "rate": 0.1, "rates": [0.1]}),
        "faults.rate",
    ),
    (minimal_document(faults={"scenario": "random-links", "rate": -0.5}), "faults.rate"),
    (minimal_document(faults={"rates": [0.2]}), "faults.rates"),
    (minimal_document(faults={"rates": "fidelity"}), "faults.rates"),
    (minimal_document(faults={"severity": 0.2}), "faults.severity"),
]


@pytest.mark.parametrize(
    "raw, path", INVALID_DOCUMENTS, ids=[path or "top-level" for _, path in INVALID_DOCUMENTS]
)
def test_invalid_documents_name_the_field(raw, path):
    with pytest.raises(ScenarioError) as excinfo:
        parse_scenario(raw)
    assert excinfo.value.path == path
    # The path leads the message so CLI users see the exact field.
    if path:
        assert str(excinfo.value).startswith(f"{path}:")


def test_validation_never_leaks_bare_key_or_type_errors():
    """A hostile grab-bag document fails as ScenarioError, nothing rawer."""
    hostile = [
        None,
        42,
        {"name": None},
        {"name": "x", "systems": None, "traffic": None},
        {"name": "x", "systems": [None], "traffic": {}},
        {"name": "x", "systems": [{"architecture": "wireless", "network": 3}],
         "traffic": {"kind": "synthetic"}},
        minimal_document(faults=[]),
        minimal_document(fidelity=[1]),
        minimal_document(traffic="uniform"),
        minimal_document(macs={}),
    ]
    for raw in hostile:
        with pytest.raises(ScenarioError):
            parse_scenario(raw)


# ----------------------------------------------------------------------
# The compiler.
# ----------------------------------------------------------------------


def test_system_config_preset_equals_plain_architecture():
    """The 4C4M preset *is* the default SystemConfig (shared cache keys)."""
    plain = system_config(SystemSpec(architecture="wireless"))
    preset = system_config(SystemSpec(architecture="wireless", preset="4C4M"))
    assert plain == preset == SystemConfig(architecture=Architecture.WIRELESS)
    big = system_config(SystemSpec(architecture="wireless", preset="8C4M"))
    assert big == paper_8c4m(Architecture.WIRELESS)


def test_system_config_applies_overrides_in_layers():
    spec = SystemSpec(
        architecture="wireless",
        overrides={"num_chips": 2, "cores_per_chip": 8},
        network={"virtual_channels": 2},
        wireless={"mac": "token", "num_channels": 3},
    )
    config = system_config(spec)
    assert config.num_chips == 2
    assert config.cores_per_chip == 8
    assert config.network.virtual_channels == 2
    assert config.network.wireless.mac == "token"
    assert config.network.wireless.num_channels == 3


def test_system_config_constraint_violations_carry_the_entry_path():
    spec = SystemSpec(architecture="wireless", overrides={"num_chips": -1})
    with pytest.raises(ScenarioError) as excinfo:
        system_config(spec, index=3)
    assert excinfo.value.path == "systems[3]"


def test_scenario_fidelity_applies_overrides():
    spec = parse_scenario(
        minimal_document(fidelity={"level": "fast", "cycles": 500, "seed": 99})
    )
    level = scenario_fidelity(spec)
    base = get_fidelity("fast")
    assert level.cycles == 500
    assert level.seed == 99
    assert level.warmup_cycles == base.warmup_cycles
    assert level.load_points == base.load_points


def test_compile_expansion_order_and_shape():
    """fraction (outer) x system x mac x channels x rate x load (inner)."""
    spec = parse_scenario(
        minimal_document(
            systems=[{"architecture": "wireless"}, {"architecture": "interposer"}],
            traffic={
                "kind": "synthetic",
                "memory_fractions": [0.1, 0.3],
                "loads": [0.001, 0.002],
            },
            macs=["", "token"],
            channels=[1, 2],
            faults={"scenario": "random-links", "rates": [0.0, 0.2]},
        )
    )
    tasks = compile_scenario(spec)
    assert len(tasks) == 2 * 2 * 2 * 2 * 2 * 2
    # The innermost axis is the load sweep...
    assert [t.load for t in tasks[:4]] == [0.001, 0.002, 0.001, 0.002]
    # ... then the fault severity (zero severity compiles to pristine) ...
    assert [(t.faults, t.fault_rate) for t in tasks[:4]] == [
        ("none", 0.0),
        ("none", 0.0),
        ("random-links", 0.2),
        ("random-links", 0.2),
    ]
    # ... then the channel plan ...
    assert [t.config.network.wireless.num_channels for t in tasks[:8]] == [1] * 4 + [2] * 4
    # ... then the MAC override, and the outermost axis is the fraction.
    assert [t.mac for t in tasks[:16]] == [""] * 8 + ["token"] * 8
    assert all(t.memory_access_fraction == 0.1 for t in tasks[:32])
    assert all(t.memory_access_fraction == 0.3 for t in tasks[32:])
    assert all(t.kind == "synthetic" for t in tasks)


def test_compile_fidelity_sentinels_use_the_level_grids():
    spec = parse_scenario(
        {
            "name": "grids",
            "fidelity": "fast",
            "systems": [{"architecture": "wireless"}],
            "traffic": {"kind": "synthetic", "loads": "fidelity"},
            "channels": "fidelity",
            "faults": {"scenario": "random-links", "rates": "fidelity"},
        }
    )
    level = get_fidelity("fast")
    tasks = compile_scenario(spec)
    expected = (
        len(level.load_points)
        * len(sorted(set(level.channel_counts)))
        * len(sorted(set(level.fault_rates)))
    )
    assert len(tasks) == expected
    assert sorted({t.load for t in tasks}) == sorted(level.load_points)
    assert {t.config.network.wireless.num_channels for t in tasks} == set(
        level.channel_counts
    )
    assert sorted({t.fault_rate for t in tasks}) == sorted(set(level.fault_rates))


def test_compile_application_scenario():
    spec = parse_scenario(
        minimal_document(
            traffic={"kind": "application", "applications": ["radix", "fft"]},
        )
    )
    tasks = compile_scenario(spec)
    assert [t.application for t in tasks] == ["radix", "fft"]
    assert all(t.kind == "application" for t in tasks)
    level = get_fidelity("fast")
    assert all(t.rate_scale == level.application_rate_scale for t in tasks)


def test_compile_macs_all_sweeps_the_registry():
    from repro.wireless.mac.registry import available_macs

    spec = parse_scenario(minimal_document(macs="all"))
    tasks = compile_scenario(spec)
    assert [t.mac for t in tasks] == available_macs()


def test_pinned_fault_rate_keeps_the_pristine_baseline():
    """faults.rate (singular) compiles to the fig7 pair: 0.0 plus the rate."""
    spec = parse_scenario(minimal_document(faults={"scenario": "cascading", "rate": 0.3}))
    assert spec.faults.rates == [0.0, 0.3]
    tasks = compile_scenario(spec)
    assert [(t.faults, t.fault_rate) for t in tasks] == [
        ("none", 0.0),
        ("cascading", 0.3),
    ]


def test_traffic_spec_defaults_round_trip_through_sections():
    assert TrafficSpec().to_dict()["kind"] == "synthetic"
    assert FaultSpec().to_dict() == {"scenario": "none", "rates": [0.0]}
