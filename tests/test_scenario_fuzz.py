"""Tests of the scenario fuzzer and its kernel-invariant battery.

Two promises under test.  First, *every draw is a valid spec*: whatever
seed the generator gets, the resulting document passes the validator —
hypothesis drives arbitrary seeds through ``random_scenario`` to check it.
Second, the battery actually enforces the four invariants (flit
conservation, deadlock freedom, MAC exclusivity, per-channel energy
reconciliation) against arbitrary registry combinations: the CI-pinned
fixed-seed batch must pass, and a doctored result must be *caught*.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import compile_scenario, parse_scenario
from repro.scenario.fuzz import (
    DEFAULT_BATTERY_SEED,
    InvariantViolation,
    check_scenario,
    check_task,
    random_scenario,
    run_battery,
)
from repro.traffic.rng import derive_seed


# ----------------------------------------------------------------------
# Every draw is a valid spec.
# ----------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_every_random_scenario_is_valid(seed):
    """Arbitrary seeds always generate documents the validator accepts."""
    raw = random_scenario(seed)
    spec = parse_scenario(raw)  # would raise ScenarioError on a generator bug
    tasks = compile_scenario(spec)
    assert tasks, "a fuzzed scenario must compile to at least one task"
    # The document survives the artifact dump/replay cycle used by CI.
    assert parse_scenario(json.loads(json.dumps(raw))) == spec


def test_random_scenario_is_deterministic_per_seed():
    assert random_scenario(123) == random_scenario(123)
    assert random_scenario(123) != random_scenario(124)


def test_random_scenarios_cover_the_registries():
    """Across many seeds the generator visits every registry axis."""
    architectures, kinds, macs, fault_scenarios = set(), set(), set(), set()
    for seed in range(120):
        raw = random_scenario(seed)
        architectures.add(raw["systems"][0]["architecture"])
        kinds.add(raw["traffic"]["kind"])
        for mac in raw.get("macs", []):
            macs.add(mac)
        if "faults" in raw:
            fault_scenarios.add(raw["faults"]["scenario"])
    assert architectures == {"wireless", "interposer", "substrate"}
    assert kinds == {"synthetic", "application"}
    assert len(macs) >= 3
    assert len(fault_scenarios) >= 3


# ----------------------------------------------------------------------
# The invariant battery.
# ----------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_arbitrary_scenarios_uphold_the_invariants(seed):
    """Hypothesis-driven end-to-end battery on a handful of random specs."""
    report = check_scenario(random_scenario(seed))
    assert report["tasks"] >= 1


def test_fixed_seed_battery_smoke():
    """A slice of the CI batch (same seed stream) upholds all invariants."""
    reports = run_battery(count=4, base_seed=DEFAULT_BATTERY_SEED)
    assert len(reports) == 4
    expected = [
        random_scenario(derive_seed(DEFAULT_BATTERY_SEED, "battery", index))["name"]
        for index in range(4)
    ]
    assert [r["name"] for r in reports] == expected
    assert sum(r["packets_delivered"] for r in reports) > 0


def test_battery_rejects_non_positive_counts():
    with pytest.raises(ValueError):
        run_battery(count=0)


def test_check_task_reports_wireless_grants():
    """The MAC exclusivity probe actually observes wireless grant slots."""
    raw = {
        "name": "probe",
        "fidelity": {"level": "fast", "cycles": 300, "warmup_cycles": 60},
        "systems": [
            {
                "architecture": "wireless",
                "num_chips": 2,
                "cores_per_chip": 4,
                "num_memory_stacks": 2,
                "vaults_per_stack": 2,
                "cores_per_wi": 2,
            }
        ],
        "traffic": {"kind": "synthetic", "loads": [0.05]},
    }
    tasks = compile_scenario(parse_scenario(raw))
    report = check_task(tasks[0], scenario=raw)
    assert report["wireless_grants"] > 0
    assert report["flits_injected"] > 0


def test_doctored_conservation_violation_is_caught(monkeypatch):
    """The battery is not a rubber stamp: a cooked result must fail."""
    from repro.scenario import fuzz as fuzz_module

    raw = random_scenario(derive_seed(DEFAULT_BATTERY_SEED, "battery", 0))
    tasks = compile_scenario(parse_scenario(raw))

    # The fuzzer builds its simulators through repro.api, which resolves
    # task_simulator from its home module at call time — patch it there.
    import repro.parallel.runner as runner_module

    real_task_simulator = runner_module.task_simulator

    class DoctoredSimulator:
        def __init__(self, task):
            self._inner = real_task_simulator(task)
            self.instrument = None

        def run(self):
            self._inner.instrument = self.instrument
            result = self._inner.run()
            result.flits_injected += 7  # break conservation after the fact
            return result

    monkeypatch.setattr(
        runner_module,
        "task_simulator",
        lambda task, profile=False, engine="scalar": DoctoredSimulator(task),
    )
    with pytest.raises(InvariantViolation) as excinfo:
        fuzz_module.check_task(tasks[0], scenario=raw)
    assert any("flit conservation" in failure for failure in excinfo.value.failures)
    assert excinfo.value.scenario == raw


def test_fuzz_cli_dumps_replayable_artifact(tmp_path, monkeypatch, capsys):
    """On a violation the CLI writes the offending document and exits 1."""
    from repro.scenario import fuzz as fuzz_module

    def explode(count, base_seed, on_progress=None, engine="scalar"):
        raise InvariantViolation(
            random_scenario(1), "task-x", ["flit conservation broken: cooked"]
        )

    monkeypatch.setattr(fuzz_module, "run_battery", explode)
    dump = tmp_path / "failing.json"
    exit_code = fuzz_module.main(["--count", "2", "--dump", str(dump)])
    assert exit_code == 1
    artifact = json.loads(dump.read_text(encoding="utf-8"))
    assert artifact["task"] == "task-x"
    assert artifact["failures"] == ["flit conservation broken: cooked"]
    # The dumped document replays straight through the validator.
    parse_scenario(artifact["scenario"])


def test_fuzz_cli_passes_on_clean_batch(capsys):
    from repro.scenario import fuzz as fuzz_module

    exit_code = fuzz_module.main(["--count", "2"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "upheld all four invariants" in out
