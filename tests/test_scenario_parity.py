"""CLI/spec parity: every built-in figure scenario equals its flag form.

The scenario compiler's core promise is that a declarative document and
the equivalent CLI-flag invocation are *the same experiment*: identical
:class:`SimulationTask` lists (same frozen instances, in the same order)
and therefore identical cache keys, so the two forms share result-cache
entries bit for bit.  These tests capture each figure module's task list
with a recording runner — no simulation runs — and compare it against the
compiled built-in document, flag variants included.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
    fig7_resilience,
    fig8_mac_study,
)
from repro.parallel.runner import ExperimentRunner
from repro.scenario import builtin_scenario, builtin_scenario_names, compile_scenario

FIDELITY = "fast"


class Captured(Exception):
    """Sentinel raised once the runner has recorded the submitted tasks."""


class RecordingRunner(ExperimentRunner):
    """Records the task list submitted to ``run`` instead of simulating.

    Every figure module submits its whole task list in one ``run`` call,
    so raising immediately afterwards captures the complete experiment
    without simulating anything.
    """

    def __init__(self):
        super().__init__(jobs=1, cache_dir=None, use_cache=False, show_progress=False)
        self.tasks = None

    def run(self, tasks):
        self.tasks = list(tasks)
        raise Captured()


def flag_form_tasks(experiment_main, **kwargs):
    """The task list the figure module builds from CLI-style flags."""
    runner = RecordingRunner()
    with pytest.raises(Captured):
        experiment_main(FIDELITY, runner, **kwargs)
    assert runner.tasks, "figure module submitted no tasks"
    return runner.tasks


def assert_parity(experiment_main, name, flag_kwargs=None, spec_kwargs=None):
    """Flag-form and spec-form task lists are equal, cache keys and all."""
    flag_tasks = flag_form_tasks(experiment_main, **(flag_kwargs or {}))
    spec = builtin_scenario(name, FIDELITY, **(spec_kwargs or {}))
    spec_tasks = compile_scenario(spec)
    assert spec_tasks == flag_tasks
    assert [t.cache_key() for t in spec_tasks] == [t.cache_key() for t in flag_tasks]
    assert [t.label for t in spec_tasks] == [t.label for t in flag_tasks]


# ----------------------------------------------------------------------
# Default forms: each figure's canonical invocation.
# ----------------------------------------------------------------------


DEFAULT_FORMS = {
    "fig2": fig2_uniform.main,
    "fig3": fig3_latency.main,
    "fig4": fig4_disintegration.main,
    "fig5": fig5_memory_traffic.main,
    "fig6": fig6_applications.main,
    "fig7": fig7_resilience.main,
    "fig8": fig8_mac_study.main,
}


def test_every_figure_has_a_builtin_spec():
    assert builtin_scenario_names() == sorted(DEFAULT_FORMS)


@pytest.mark.parametrize("name", sorted(DEFAULT_FORMS))
def test_builtin_spec_matches_default_flag_form(name):
    assert_parity(DEFAULT_FORMS[name], name)


# ----------------------------------------------------------------------
# Flag variants: the CLI knobs thread into the documents identically.
# ----------------------------------------------------------------------


def test_fig2_pattern_and_mac_variant():
    assert_parity(
        fig2_uniform.main,
        "fig2",
        flag_kwargs={"pattern": "transpose", "mac": "token"},
        spec_kwargs={"pattern": "transpose", "mac": "token"},
    )


def test_fig3_fault_variant_with_default_rate():
    # The CLI resolves a bare --faults to DEFAULT_FAULT_RATE=0.1.
    assert_parity(
        fig3_latency.main,
        "fig3",
        flag_kwargs={"faults": "random-links", "fault_rate": 0.1},
        spec_kwargs={"faults": "random-links"},
    )


def test_fig4_fault_and_mac_variant():
    assert_parity(
        fig4_disintegration.main,
        "fig4",
        flag_kwargs={"faults": "cascading", "fault_rate": 0.25, "mac": "fdma"},
        spec_kwargs={"faults": "cascading", "fault_rate": 0.25, "mac": "fdma"},
    )


def test_fig7_pinned_rate_variant():
    assert_parity(
        fig7_resilience.main,
        "fig7",
        flag_kwargs={"faults": "hub-transceiver-loss", "fault_rate": 0.3},
        spec_kwargs={"faults": "hub-transceiver-loss", "fault_rate": 0.3},
    )


def test_fig7_none_promotes_to_default_scenario():
    from repro.faults.scenarios import DEFAULT_SCENARIO

    spec = builtin_scenario("fig7", FIDELITY, faults="none")
    assert spec.faults.scenario == DEFAULT_SCENARIO
    assert_parity(
        fig7_resilience.main,
        "fig7",
        flag_kwargs={"faults": "none"},
        spec_kwargs={"faults": "none"},
    )


def test_fig8_pinned_mac_variant():
    assert_parity(
        fig8_mac_study.main,
        "fig8",
        flag_kwargs={"mac": "tdma"},
        spec_kwargs={"mac": "tdma"},
    )


# ----------------------------------------------------------------------
# The cache-sharing consequence, demonstrated end to end.
# ----------------------------------------------------------------------


def test_spec_and_flag_forms_share_cache_entries(tmp_path):
    """A spec run warms the cache for the flag form (fig7, one tiny task)."""
    from repro.scenario import run_scenario

    spec = builtin_scenario("fig7", FIDELITY, fault_rate=0.2)
    # Keep it tiny: one system, the pinned severity pair.
    spec.systems = spec.systems[:1]
    tasks = compile_scenario(spec)

    warm = ExperimentRunner(jobs=1, cache_dir=str(tmp_path), show_progress=False)
    run_scenario(spec, warm)
    assert warm.tasks_executed == len(set(tasks))

    again = ExperimentRunner(jobs=1, cache_dir=str(tmp_path), show_progress=False)
    again.run(tasks)
    assert again.tasks_executed == 0
    assert again.cache_hits == len(set(tasks))
