"""Sweep-service tests: wire codec, dedupe/coalescing/priorities, daemon.

The PR-8 contracts:

* **Wire fidelity** — a task round-tripped through the NDJSON wire form
  is equal to the original and hashes to the same cache key (the
  property the service's dedupe and coalescing correctness rests on);
  malformed payloads fail with a typed :class:`WireError`, never a
  silent mis-decode.
* **Dedupe** — resubmitting an already-cached job executes zero new
  tasks; duplicates inside one submission run once.
* **Coalescing** — a task identical to one already queued or running
  for an earlier job subscribes to that single execution.
* **Priorities** — every interactive task dispatches before any queued
  bulk task, and joining a queued task from an interactive job promotes
  it; running tasks are never killed.
* **Daemon** — the subprocess daemon serves the protocol end to end:
  duplicate submissions come back entirely from its cache, a SIGKILL
  mid-task leaves a resumable checkpoint behind, and the restarted
  daemon finishes the job bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import pytest

import repro
from repro.core.config import Architecture
from repro.parallel.checkpoints import CheckpointStore
from repro.parallel.runner import execute_task, uniform_task
from repro.service.client import ServiceClient, ServiceError, ServiceRunner, submit_sync
from repro.service.jobs import ServiceConfig, SweepService
from repro.service.wire import (
    WireError,
    decode_line,
    encode_line,
    task_from_wire,
    task_to_wire,
)
from repro.testing import small_system_config


@dataclass(frozen=True)
class _Fidelity:
    cycles: int = 200
    warmup_cycles: int = 50
    seed: int = 5


def _task(load, architecture=Architecture.WIRELESS, cycles=200, seed=5, faults="none"):
    return uniform_task(
        small_system_config(architecture),
        _Fidelity(cycles=cycles, seed=seed),
        load=load,
        faults=faults,
        fault_rate=0.3 if faults != "none" else 0.0,
    )


# ----------------------------------------------------------------------
# Wire codec.
# ----------------------------------------------------------------------


class TestWireCodec:
    def test_round_trip_preserves_task_and_cache_key(self):
        for task in (
            _task(0.02),
            _task(0.05, architecture=Architecture.SUBSTRATE, faults="random-links"),
        ):
            clone = task_from_wire(task_to_wire(task))
            assert clone == task
            assert clone.cache_key() == task.cache_key()

    def test_round_trip_survives_json(self):
        task = _task(0.02)
        line = encode_line({"task": task_to_wire(task)})
        decoded = decode_line(line)
        assert task_from_wire(decoded["task"]) == task

    def test_unknown_field_rejected(self):
        payload = task_to_wire(_task(0.02))
        payload["surprise"] = 1
        with pytest.raises(WireError, match="surprise"):
            task_from_wire(payload)

    def test_bad_enum_value_rejected(self):
        payload = task_to_wire(_task(0.02))
        payload["config"]["architecture"] = "carrier-pigeon"
        with pytest.raises(WireError):
            task_from_wire(payload)

    def test_decode_line_errors(self):
        assert decode_line(b"\n") is None
        with pytest.raises(WireError):
            decode_line(b"not json\n")
        with pytest.raises(WireError):
            decode_line(b"[1, 2]\n")


# ----------------------------------------------------------------------
# In-process service: dedupe, coalescing, priorities.
# ----------------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


async def _with_service(config, body):
    service = SweepService(config)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


async def _let_dispatcher_start_one(service):
    """Yield to the loop until the dispatcher has claimed a task."""
    for _ in range(1000):
        await asyncio.sleep(0.01)
        if service._running:
            return
    raise AssertionError("dispatcher never started a task")


def _gate_task(monkeypatch, gated_task):
    """Block the worker executing ``gated_task`` until the gate opens.

    Lets a test hold one task "running" while it submits overlapping
    jobs, making queued-vs-running distinctions deterministic.
    """
    import threading

    release = threading.Event()

    def gated(task, *args, **kwargs):
        if task.cache_key() == gated_task.cache_key():
            assert release.wait(60)
        return execute_task(task, *args, **kwargs)

    monkeypatch.setattr("repro.service.jobs.execute_task", gated)
    return release


class TestSweepService:
    def test_duplicate_submission_executes_zero_tasks(self, tmp_path):
        tasks = [_task(load) for load in (0.01, 0.02, 0.03)]
        config = ServiceConfig(jobs=1, cache_dir=str(tmp_path), use_processes=False)

        async def scenario(service):
            first = await service.submit(tasks)
            await first.wait()
            second = await service.submit(tasks)
            await second.wait()
            return first, second

        first, second = _run(_with_service(config, scenario))
        assert (first.executed, first.cached) == (3, 0)
        assert (second.executed, second.cached) == (0, 3)
        assert second.results == first.results
        assert {t.load for t in second.summaries()} == {0.01, 0.02, 0.03}

    def test_duplicates_within_one_job_run_once(self, tmp_path):
        repeated = _task(0.02)
        tasks = [repeated, _task(0.04), repeated]
        config = ServiceConfig(jobs=1, cache_dir=str(tmp_path), use_processes=False)

        async def scenario(service):
            events = []
            job = await service.submit(tasks)
            async for event in job.stream():
                events.append(event)
            return job, events

        job, events = _run(_with_service(config, scenario))
        assert events[0].kind == "accepted"
        assert events[0].data["tasks"] == 3
        assert events[0].data["unique"] == 2
        assert job.executed == 2
        assert len(job.results) == 2

    def test_identical_inflight_task_coalesces_across_jobs(self, monkeypatch):
        shared = _task(0.03)
        config = ServiceConfig(jobs=1, use_processes=False)  # no cache
        release = _gate_task(monkeypatch, _task(0.01))

        async def scenario(service):
            job1 = await service.submit([_task(0.01), shared])
            await _let_dispatcher_start_one(service)
            # 0.01 is running (held at the gate), `shared` is queued:
            # job2 must subscribe to the queued execution instead of
            # spawning a second one.
            job2 = await service.submit([shared])
            release.set()
            await job1.wait()
            await job2.wait()
            return job1, job2, await service.status()

        job1, job2, status = _run(_with_service(config, scenario))
        assert (job1.executed, job1.coalesced) == (2, 0)
        assert (job2.executed, job2.coalesced) == (0, 1)
        key = shared.cache_key()
        assert job2.results[key] == job1.results[key]
        assert status["executed"] == 2 and status["coalesced"] == 1

    def test_interactive_preempts_queued_bulk_tasks(self, monkeypatch):
        first, bulk_tail, shared = _task(0.01), _task(0.02), _task(0.03)
        config = ServiceConfig(jobs=1, use_processes=False)
        release = _gate_task(monkeypatch, first)

        async def scenario(service):
            order = []
            job1 = await service.submit([first, bulk_tail, shared], priority="bulk")
            await _let_dispatcher_start_one(service)
            # `first` is running (held at the gate) and must finish, never
            # be killed; `shared` is queued bulk and gets promoted by the
            # interactive join, so it dispatches before `bulk_tail`
            # despite arriving later.
            job2 = await service.submit([shared], priority="interactive")
            release.set()
            async for event in job1.stream():
                if event.kind == "task":
                    order.append(event.data["key"])
            await job2.wait()
            return order, job1, job2

        order, job1, job2 = _run(_with_service(config, scenario))
        assert order == [t.cache_key() for t in (first, shared, bulk_tail)]
        assert job1.executed == 3  # originator of all three
        assert (job2.executed, job2.coalesced) == (0, 1)

    def test_submit_validates_inputs(self):
        async def unknown_priority(service):
            await service.submit([_task(0.01)], priority="urgent")

        with pytest.raises(ValueError, match="unknown priority"):
            _run(_with_service(ServiceConfig(use_processes=False), unknown_priority))
        with pytest.raises(RuntimeError, match="not started"):
            _run(SweepService(ServiceConfig()).submit([_task(0.01)]))
        with pytest.raises(ValueError, match="unknown engine"):
            SweepService(ServiceConfig(engine="quantum"))

    def test_worker_failure_fails_only_that_task(self, tmp_path, monkeypatch):
        good, bad = _task(0.01), _task(0.02)
        config = ServiceConfig(jobs=1, cache_dir=str(tmp_path), use_processes=False)
        real_execute = execute_task

        def flaky(task, *args, **kwargs):
            if task.cache_key() == bad.cache_key():
                raise RuntimeError("injected worker crash")
            return real_execute(task, *args, **kwargs)

        monkeypatch.setattr("repro.service.jobs.execute_task", flaky)

        async def scenario(service):
            job = await service.submit([good, bad])
            events = [event async for event in job.stream()]
            return job, events

        job, events = _run(_with_service(config, scenario))
        assert job.state.value == "failed"
        assert job.executed == 1 and job.failed == 1
        assert good.cache_key() in job.results
        kinds = [event.kind for event in events]
        assert kinds == ["accepted", "task", "task_failed", "failed"]
        assert "injected worker crash" in job.errors[bad.cache_key()]


# ----------------------------------------------------------------------
# Daemon subprocess: protocol, shared cache, kill + resume.
# ----------------------------------------------------------------------


def _daemon_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(socket_path, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--socket", str(socket_path), *extra],
        env=_daemon_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_ready(socket_path, deadline=60.0):
    client = ServiceClient(str(socket_path))
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            if asyncio.run(client.ping()):
                return client
        except (OSError, ServiceError):
            time.sleep(0.05)
    raise AssertionError("daemon did not become ready")


@pytest.fixture
def daemon_dirs(tmp_path):
    return {
        "socket": tmp_path / "svc.sock",
        "cache": tmp_path / "cache",
        "ckpt": tmp_path / "ckpt",
    }


class TestServiceDaemon:
    def test_submit_twice_second_fully_cached(self, daemon_dirs):
        tasks = [_task(load) for load in (0.01, 0.02)]
        process = _start_daemon(
            daemon_dirs["socket"], "--cache-dir", str(daemon_dirs["cache"])
        )
        try:
            client = _wait_ready(daemon_dirs["socket"])
            first = asyncio.run(client.submit(tasks))
            assert (first["executed"], first["cached"]) == (2, 0)
            second = asyncio.run(client.submit(tasks))
            assert (second["executed"], second["cached"]) == (0, 2)
            assert second["results"] == first["results"]
            # The runner facade maps wire results back to task objects.
            runner = ServiceRunner(str(daemon_dirs["socket"]))
            summaries = runner.run(tasks)
            assert runner.tasks_executed == 0 and runner.cache_hits == 2
            assert {t.load for t in summaries} == {0.01, 0.02}
            status = asyncio.run(client.status())
            assert status["executed"] == 2 and status["cached"] == 4
            asyncio.run(client.shutdown())
            assert process.wait(timeout=30) == 0
            assert not daemon_dirs["socket"].exists()
        finally:
            if process.poll() is None:
                process.kill()

    def test_malformed_requests_get_error_replies(self, daemon_dirs):
        process = _start_daemon(daemon_dirs["socket"])
        try:
            client = _wait_ready(daemon_dirs["socket"])
            with pytest.raises(ServiceError, match="unknown op"):
                asyncio.run(client._roundtrip({"op": "dance"}))
            with pytest.raises(ServiceError, match="exactly one of"):
                asyncio.run(client._roundtrip({"op": "submit"}))
            with pytest.raises(ServiceError, match="priority"):
                asyncio.run(
                    client._roundtrip(
                        {
                            "op": "submit",
                            "tasks": [task_to_wire(_task(0.01))],
                            "priority": "urgent",
                        }
                    )
                )
            # The daemon survived every malformed request.
            assert asyncio.run(client.ping())
        finally:
            process.kill()
            process.wait(timeout=30)

    def test_kill_mid_task_then_resume_is_bit_identical(self, daemon_dirs):
        task = uniform_task(
            small_system_config(Architecture.WIRELESS),
            _Fidelity(cycles=12000, warmup_cycles=500, seed=7),
            load=0.002,
        )
        golden = execute_task(task)
        store = CheckpointStore(daemon_dirs["ckpt"])
        key = task.cache_key()

        daemon_args = (
            "--cache-dir", str(daemon_dirs["cache"]),
            "--checkpoint-every", "400",
            "--checkpoint-dir", str(daemon_dirs["ckpt"]),
        )
        process = _start_daemon(daemon_dirs["socket"], *daemon_args)
        try:
            client = _wait_ready(daemon_dirs["socket"])
            with ThreadPoolExecutor(max_workers=1) as pool:
                doomed = pool.submit(
                    lambda: asyncio.run(client.submit([task]))
                )
                end = time.monotonic() + 120
                while time.monotonic() < end and not store.path_for(key).exists():
                    time.sleep(0.05)
                assert store.path_for(key).exists(), "no checkpoint before deadline"
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=30)
                with pytest.raises(ServiceError):
                    doomed.result(timeout=60)
            # The kill left a resumable checkpoint, not a completed cache
            # entry: the next daemon must resume, not recompute or serve
            # a stale result.
            assert store.path_for(key).exists()

            process = _start_daemon(daemon_dirs["socket"], *daemon_args)
            _wait_ready(daemon_dirs["socket"])
            results = submit_sync([task], str(daemon_dirs["socket"]), timeout=600)
            assert results[task].as_dict() == golden
            assert not store.path_for(key).exists()  # consumed on success
            asyncio.run(ServiceClient(str(daemon_dirs["socket"])).shutdown())
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
