"""End-to-end tests of the cycle-accurate simulation engine."""

import pytest

from repro.core.architectures import build_system
from repro.core.config import Architecture
from repro.core.framework import MultichipSimulation
from repro.noc.engine import SimulationConfig, Simulator
from repro.traffic.uniform import UniformRandomTraffic

from repro.testing import small_system_config


def _run(architecture, injection_rate=0.05, cycles=400, mac="control_packet", seed=11,
         memory_fraction=0.25, memory_replies=False):
    system = build_system(small_system_config(architecture, mac=mac))
    traffic = UniformRandomTraffic(
        system.topology,
        injection_rate=injection_rate,
        memory_access_fraction=memory_fraction,
        memory_replies=memory_replies,
        seed=seed,
    )
    simulator = Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=system.config.network,
        simulation_config=SimulationConfig(cycles=cycles, warmup_cycles=cycles // 4),
    )
    return simulator.run()


class TestBasicDelivery:
    @pytest.mark.parametrize(
        "architecture",
        [Architecture.SUBSTRATE, Architecture.INTERPOSER, Architecture.WIRELESS],
    )
    def test_packets_are_delivered(self, architecture):
        result = _run(architecture, injection_rate=0.02)
        assert result.packets_delivered > 0
        assert result.flits_ejected_measured > 0
        assert not result.stalled

    def test_flit_conservation(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.02)
        # Every ejected flit was injected first.
        assert result.flits_ejected_measured <= result.flits_injected
        # Every delivered packet was generated.
        assert result.packets_delivered <= result.packets_generated
        assert result.packets_generated <= result.packets_offered

    def test_latency_at_least_path_plus_serialisation(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.01)
        packet_length = 8
        assert result.average_packet_latency_cycles() >= packet_length
        assert result.average_network_latency_cycles() <= (
            result.average_packet_latency_cycles() + 1e-9
        )

    def test_energy_is_positive_and_consistent(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.02)
        assert result.average_packet_energy_pj() > 0
        assert result.system_packet_energy_pj() > 0
        assert result.energy.total_pj >= result.energy.dynamic_pj

    def test_wireless_hops_only_in_wireless_architecture(self):
        wired = _run(Architecture.INTERPOSER, injection_rate=0.02)
        wireless = _run(Architecture.WIRELESS, injection_rate=0.02)
        assert wired.wireless_flit_hops == 0
        assert wireless.wireless_flit_hops > 0


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = _run(Architecture.WIRELESS, seed=3)
        second = _run(Architecture.WIRELESS, seed=3)
        assert first.packets_delivered == second.packets_delivered
        assert first.flits_ejected_measured == second.flits_ejected_measured
        assert first.average_packet_latency_cycles() == pytest.approx(
            second.average_packet_latency_cycles()
        )
        assert first.average_packet_energy_pj() == pytest.approx(
            second.average_packet_energy_pj()
        )

    def test_different_seed_different_traffic(self):
        first = _run(Architecture.WIRELESS, seed=3)
        second = _run(Architecture.WIRELESS, seed=4)
        assert first.packets_offered != second.packets_offered or (
            first.average_packet_latency_cycles()
            != second.average_packet_latency_cycles()
        )


class TestLoadBehaviour:
    def test_latency_rises_with_load(self):
        low = _run(Architecture.INTERPOSER, injection_rate=0.005, cycles=600)
        high = _run(Architecture.INTERPOSER, injection_rate=0.2, cycles=600)
        assert (
            high.average_packet_latency_cycles()
            >= low.average_packet_latency_cycles()
        )

    def test_throughput_rises_with_load_below_saturation(self):
        low = _run(Architecture.WIRELESS, injection_rate=0.005, cycles=600)
        mid = _run(Architecture.WIRELESS, injection_rate=0.02, cycles=600)
        assert (
            mid.accepted_flits_per_core_per_cycle()
            > low.accepted_flits_per_core_per_cycle()
        )

    def test_zero_load_produces_no_packets(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.0)
        assert result.packets_offered == 0
        assert result.average_packet_latency_cycles() == 0.0


class TestMacVariants:
    def test_token_mac_also_delivers(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.02, mac="token", cycles=600)
        assert result.packets_delivered > 0
        assert any(
            stats["flits_transmitted"] > 0 for stats in result.mac_statistics.values()
        )

    def test_control_packet_mac_reports_control_packets(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.02, cycles=600)
        assert any(
            stats["control_packets"] > 0 for stats in result.mac_statistics.values()
        )

    def test_sleepy_receivers_sleep_under_control_mac(self):
        result = _run(Architecture.WIRELESS, injection_rate=0.02, cycles=600)
        assert 0.0 <= result.transceiver_sleep_fraction <= 1.0


class TestMemoryReplies:
    def test_replies_generate_return_traffic(self):
        with_replies = _run(
            Architecture.WIRELESS, injection_rate=0.02, memory_replies=True, cycles=600
        )
        without = _run(
            Architecture.WIRELESS, injection_rate=0.02, memory_replies=False, cycles=600
        )
        assert with_replies.packets_offered > without.packets_offered


class TestFrameworkFacade:
    def test_run_uniform_and_summary(self, short_simulation_config):
        simulation = MultichipSimulation.from_config(
            small_system_config(Architecture.WIRELESS), short_simulation_config
        )
        result = simulation.run_uniform(injection_rate=0.02, seed=2)
        summary = result.summary()
        assert summary["packets_delivered"] > 0
        assert summary["bandwidth_gbps_per_core"] >= 0

    def test_run_application(self, short_simulation_config):
        simulation = MultichipSimulation.from_config(
            small_system_config(Architecture.WIRELESS), short_simulation_config
        )
        result = simulation.run_application("blackscholes", rate_scale=0.5, seed=2)
        assert result.packets_generated > 0

    def test_sweep_uniform(self, short_simulation_config):
        simulation = MultichipSimulation.from_config(
            small_system_config(Architecture.WIRELESS), short_simulation_config
        )
        sweep = simulation.sweep_uniform(loads=[0.005, 0.02], seed=2)
        assert len(sweep.points) == 2
        assert sweep.peak_bandwidth_gbps_per_core() > 0
        assert sweep.sustainable_bandwidth_gbps_per_core() > 0

    def test_simulation_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(cycles=0)
        with pytest.raises(ValueError):
            SimulationConfig(cycles=100, warmup_cycles=100)
