"""Tests of the 65 nm technology constants and helpers."""


import pytest

from repro.energy import technology as tech


class TestConstants:
    def test_clock_and_cycle_time_are_consistent(self):
        assert tech.CYCLE_TIME_S == pytest.approx(1.0 / tech.CLOCK_FREQUENCY_HZ)
        assert tech.CLOCK_FREQUENCY_HZ == pytest.approx(2.5e9)

    def test_paper_quoted_figures(self):
        """The numbers the paper quotes verbatim must be captured exactly."""
        assert tech.FLIT_WIDTH_BITS == 32
        assert tech.DEFAULT_PACKET_LENGTH_FLITS == 64
        assert tech.DEFAULT_VIRTUAL_CHANNELS == 8
        assert tech.DEFAULT_VC_BUFFER_DEPTH_FLITS == 16
        assert tech.SWITCH_PIPELINE_STAGES == 3
        assert tech.WIRELESS_ENERGY_PJ_PER_BIT == pytest.approx(2.3)
        assert tech.WIRELESS_DATA_RATE_GBPS == pytest.approx(16.0)
        assert tech.WIRELESS_TRANSCEIVER_AREA_MM2 == pytest.approx(0.3)
        assert tech.SERIAL_IO_ENERGY_PJ_PER_BIT == pytest.approx(5.0)
        assert tech.SERIAL_IO_RATE_GBPS == pytest.approx(15.0)
        assert tech.WIDE_IO_ENERGY_PJ_PER_BIT == pytest.approx(6.5)
        assert tech.WIDE_IO_WIDTH_BITS == 128

    def test_energy_ordering_matches_paper(self):
        """Wireless < serial I/O < wide I/O per bit, as the paper argues."""
        assert (
            tech.WIRELESS_ENERGY_PJ_PER_BIT
            < tech.SERIAL_IO_ENERGY_PJ_PER_BIT
            < tech.WIDE_IO_ENERGY_PJ_PER_BIT
        )


class TestHelpers:
    def test_bits_per_cycle(self):
        assert tech.bits_per_cycle(16.0) == pytest.approx(6.4)
        assert tech.bits_per_cycle(80.0) == pytest.approx(32.0)

    def test_cycles_per_flit_serialisation(self):
        # 15 Gb/s serial lane: 32 bits take ceil(32 / 6) = 6 cycles.
        assert tech.cycles_per_flit(15.0) == 6
        # 128 Gb/s wide I/O moves a flit in a single cycle.
        assert tech.cycles_per_flit(128.0) == 1
        # Even an over-provisioned channel takes at least one cycle.
        assert tech.cycles_per_flit(1000.0) == 1

    def test_cycles_per_flit_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            tech.cycles_per_flit(0.0)


class TestTechnologyDataclass:
    def test_default_instance_matches_module_constants(self):
        t = tech.Technology()
        assert t.flit_width_bits == tech.FLIT_WIDTH_BITS
        assert t.wireless_energy_pj_per_bit == tech.WIRELESS_ENERGY_PJ_PER_BIT

    def test_flit_energy(self):
        t = tech.Technology()
        assert t.flit_energy_pj(2.3) == pytest.approx(2.3 * 32)

    def test_wire_energy_scales_with_length(self):
        t = tech.Technology()
        one = t.wire_energy_pj_per_flit(1.0)
        five = t.wire_energy_pj_per_flit(5.0)
        assert five == pytest.approx(5 * one)

    def test_wire_energy_rejects_negative_length(self):
        with pytest.raises(ValueError):
            tech.Technology().wire_energy_pj_per_flit(-1.0)

    def test_wire_delay_minimum_one_cycle(self):
        t = tech.Technology()
        assert t.wire_delay_cycles(0.1) == 1
        assert t.wire_delay_cycles(10.0) >= 2

    def test_wide_io_rate(self):
        assert tech.Technology().wide_io_rate_gbps() == pytest.approx(128.0)

    def test_immutability(self):
        t = tech.Technology()
        with pytest.raises(Exception):
            t.flit_width_bits = 64  # type: ignore[misc]
