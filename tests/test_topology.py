"""Tests of geometry planning, graph construction and the multichip builders."""

import pytest

from repro.topology import (
    EndpointKind,
    InterposerOverlayConfig,
    LinkKind,
    RegionKind,
    SwitchKind,
    TopologyError,
    TopologyGraph,
    WirelessOverlayConfig,
    apply_interposer_overlay,
    apply_substrate_overlay,
    apply_wireless_overlay,
    boundary_switches,
    build_multichip_base,
    cluster_centers,
    evenly_spaced,
    max_wireless_distance_mm,
    memory_anchor_switch,
    mesh_shape_for_cores,
    plan_package,
    wireless_area_overhead_mm2,
    wireless_interface_count,
)


class TestGeometry:
    def test_mesh_shape_square_counts(self):
        assert mesh_shape_for_cores(16) == (4, 4)
        assert mesh_shape_for_cores(64) == (8, 8)

    def test_mesh_shape_prefers_more_rows(self):
        cols, rows = mesh_shape_for_cores(8)
        assert cols * rows == 8
        assert rows >= cols

    def test_mesh_shape_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mesh_shape_for_cores(0)

    def test_plan_package_counts(self):
        layout = plan_package(4, 16, 4)
        assert len(layout.chips) == 4
        assert len(layout.memories) == 4
        assert layout.total_grid_columns == 16
        assert layout.mesh_rows == 4

    def test_constant_area_disintegration_shrinks_chips(self):
        four = plan_package(4, 16, 4, total_processing_area_mm2=400.0)
        eight = plan_package(8, 8, 4, total_processing_area_mm2=400.0)
        assert four.chip_edge_mm == pytest.approx(10.0)
        assert eight.chip_edge_mm < four.chip_edge_mm
        assert 8 * eight.chip_edge_mm**2 == pytest.approx(400.0)

    def test_memory_stacks_adjacent_to_distinct_chips(self):
        layout = plan_package(4, 16, 4)
        adjacency = [m.adjacent_chip_index for m in layout.memories]
        assert sorted(adjacency) == [0, 1, 2, 3]

    def test_memory_stacks_on_both_sides(self):
        layout = plan_package(4, 16, 4)
        sides = {m.side for m in layout.memories}
        assert sides == {"top", "bottom"}


class TestTopologyGraph:
    def _tiny_graph(self):
        graph = TopologyGraph()
        region = graph.add_region(RegionKind.PROCESSOR_CHIP, "chip0", 2, 1, (0, 0), 5.0)
        a = graph.add_switch(SwitchKind.CORE, region.region_id, 0, 0, (1.0, 1.0))
        b = graph.add_switch(SwitchKind.CORE, region.region_id, 1, 0, (2.0, 1.0))
        graph.add_endpoint(EndpointKind.CORE, a.switch_id)
        graph.add_endpoint(EndpointKind.CORE, b.switch_id)
        graph.add_link(a.switch_id, b.switch_id, LinkKind.MESH, length_mm=1.0)
        return graph, a, b

    def test_basic_queries(self):
        graph, a, b = self._tiny_graph()
        assert graph.num_switches == 2
        assert graph.num_endpoints == 2
        assert len(graph.cores) == 2
        assert graph.find_link(a.switch_id, b.switch_id) is not None
        assert graph.neighbors(a.switch_id)[0][0] == b.switch_id
        graph.validate()

    def test_duplicate_link_rejected(self):
        graph, a, b = self._tiny_graph()
        with pytest.raises(TopologyError):
            graph.add_link(a.switch_id, b.switch_id, LinkKind.MESH)

    def test_self_link_rejected(self):
        graph, a, _ = self._tiny_graph()
        with pytest.raises(TopologyError):
            graph.add_link(a.switch_id, a.switch_id, LinkKind.MESH)

    def test_unknown_switch_lookup(self):
        graph, _, _ = self._tiny_graph()
        with pytest.raises(TopologyError):
            graph.switch(999)

    def test_disconnected_graph_fails_validation(self):
        graph, _, _ = self._tiny_graph()
        region = graph.regions[0]
        graph.add_switch(SwitchKind.CORE, region.region_id, 5, 5, (9.0, 9.0))
        with pytest.raises(TopologyError):
            graph.validate()

    def test_to_networkx_roundtrip(self):
        graph, _, _ = self._tiny_graph()
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_switches
        assert nx_graph.number_of_edges() == len(graph.links)


class TestMultichipBase:
    def test_base_counts(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
        graph = system.graph
        assert system.num_chips == 2
        assert system.num_memory_stacks == 2
        assert len(graph.cores) == 8
        assert len(graph.memory_vaults) == 4
        # 2 chips x (2x2 mesh) switches + 2 memory logic dies.
        assert graph.num_switches == 8 + 2
        # The base has no inter-region links yet.
        assert not graph.inter_region_links()

    def test_boundary_switch_ordering(self):
        system = build_multichip_base(2, 4, 0)
        left = boundary_switches(system.graph, system.chip_region_ids[0], "left")
        right = boundary_switches(system.graph, system.chip_region_ids[0], "right")
        assert len(left) == len(right) == 2
        assert left != right

    def test_evenly_spaced(self):
        assert evenly_spaced([1, 2, 3, 4], 2) == [2, 4] or len(
            evenly_spaced([1, 2, 3, 4], 2)
        ) == 2
        assert evenly_spaced([1, 2], 5) == [1, 2]
        with pytest.raises(ValueError):
            evenly_spaced([1], 0)

    def test_cluster_centers_count_and_distinct(self):
        system = build_multichip_base(1, 16, 0)
        centers = cluster_centers(system.graph, system.chip_region_ids[0], 4)
        assert len(centers) == 4
        assert len(set(centers)) == 4


class TestOverlays:
    def test_substrate_overlay_links(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
        created = apply_substrate_overlay(system)
        kinds = {link.kind for link in created}
        assert kinds == {LinkKind.SERIAL_IO, LinkKind.WIDE_IO}
        # One serial link per adjacent chip pair, one wide I/O per stack.
        assert len([link for link in created if link.kind == LinkKind.SERIAL_IO]) == 1
        assert len([link for link in created if link.kind == LinkKind.WIDE_IO]) == 2
        system.graph.validate()

    def test_interposer_overlay_links(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
        created = apply_interposer_overlay(
            system, InterposerOverlayConfig(links_per_boundary=2)
        )
        interposer = [link for link in created if link.kind == LinkKind.INTERPOSER]
        assert len(interposer) == 2
        system.graph.validate()

    def test_interposer_full_extension(self):
        system = build_multichip_base(2, 4, 0)
        created = apply_interposer_overlay(
            system, InterposerOverlayConfig(links_per_boundary=0)
        )
        # 2x2 chips have 2 boundary rows -> 2 links when fully extended.
        assert len(created) == 2

    def test_wireless_overlay_deployment(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
        created = apply_wireless_overlay(
            system, WirelessOverlayConfig(cores_per_wi=4)
        )
        graph = system.graph
        # 1 WI per chip + 1 per memory stack.
        assert wireless_interface_count(graph) == 4
        assert all(link.kind == LinkKind.WIRELESS for link in created)
        # Pairwise connectivity between 4 WIs = 6 links.
        assert len(created) == 6
        assert wireless_area_overhead_mm2(graph) == pytest.approx(4 * 0.3)
        assert max_wireless_distance_mm(graph) > 0
        graph.validate()

    def test_wireless_density_controls_wi_count(self):
        system = build_multichip_base(1, 16, 0)
        apply_wireless_overlay(system, WirelessOverlayConfig(cores_per_wi=4))
        assert wireless_interface_count(system.graph) == 4

    def test_every_chip_gets_a_wi_even_when_small(self):
        system = build_multichip_base(4, 2, 0)
        apply_wireless_overlay(system, WirelessOverlayConfig(cores_per_wi=16))
        assert wireless_interface_count(system.graph) == 4

    def test_memory_anchor_is_on_adjacent_chip(self):
        system = build_multichip_base(2, 4, 2, vaults_per_stack=2)
        for memory_index in range(system.num_memory_stacks):
            anchor = memory_anchor_switch(system, memory_index)
            placement = system.layout.memories[memory_index]
            chip_region = system.chip_region_ids[placement.adjacent_chip_index]
            assert system.graph.switch(anchor).region_id == chip_region
