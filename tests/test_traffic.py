"""Tests of the traffic generators (uniform, synthetic patterns, applications)."""

import pytest

from repro.topology import apply_wireless_overlay, build_multichip_base
from repro.topology.wireless_overlay import WirelessOverlayConfig
from repro.traffic import (
    APPLICATION_PROFILES,
    BitComplementTraffic,
    HotspotTraffic,
    NeighbourTraffic,
    SynfullApplicationTraffic,
    TrafficRequest,
    TransposeTraffic,
    UniformRandomTraffic,
    default_application_set,
    get_profile,
    offchip_fraction,
    profiles_for_suite,
)


def _topology(num_chips=2, cores_per_chip=8, stacks=2):
    system = build_multichip_base(num_chips, cores_per_chip, stacks, vaults_per_stack=2)
    apply_wireless_overlay(system, WirelessOverlayConfig(cores_per_wi=8))
    return system.graph


def _collect(model, cycles=300):
    requests = []
    for cycle in range(cycles):
        requests.extend(model.generate(cycle))
    return requests


class TestTrafficRequest:
    def test_rejects_self_traffic(self):
        with pytest.raises(ValueError):
            TrafficRequest(src_endpoint=1, dst_endpoint=1)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            TrafficRequest(src_endpoint=1, dst_endpoint=2, length_flits=0)


class TestUniformRandomTraffic:
    def test_injection_rate_respected(self):
        topology = _topology()
        model = UniformRandomTraffic(topology, injection_rate=0.1, seed=1)
        requests = _collect(model, cycles=500)
        cores = len(topology.cores)
        expected = 0.1 * cores * 500
        assert expected * 0.8 <= len(requests) <= expected * 1.2

    def test_memory_fraction_respected(self):
        topology = _topology()
        model = UniformRandomTraffic(
            topology, injection_rate=0.2, memory_access_fraction=0.5, seed=1
        )
        requests = _collect(model, cycles=400)
        memory = sum(1 for r in requests if r.is_memory_access)
        assert 0.4 <= memory / len(requests) <= 0.6

    def test_zero_memory_fraction_allowed_without_stacks(self):
        system = build_multichip_base(1, 8, 0)
        model = UniformRandomTraffic(
            system.graph, injection_rate=0.1, memory_access_fraction=0.0, seed=1
        )
        assert all(not r.is_memory_access for r in _collect(model, 100))

    def test_memory_fraction_without_stacks_rejected(self):
        system = build_multichip_base(1, 8, 0)
        with pytest.raises(ValueError):
            UniformRandomTraffic(
                system.graph, injection_rate=0.1, memory_access_fraction=0.2
            )

    def test_seed_reproducibility(self):
        topology = _topology()
        a = _collect(UniformRandomTraffic(topology, 0.1, seed=5), 200)
        b = _collect(UniformRandomTraffic(topology, 0.1, seed=5), 200)
        assert [(r.src_endpoint, r.dst_endpoint) for r in a] == [
            (r.src_endpoint, r.dst_endpoint) for r in b
        ]

    def test_reset_restores_stream(self):
        topology = _topology()
        model = UniformRandomTraffic(topology, 0.1, seed=5)
        first = _collect(model, 100)
        model.reset()
        second = _collect(model, 100)
        assert [(r.src_endpoint, r.dst_endpoint) for r in first] == [
            (r.src_endpoint, r.dst_endpoint) for r in second
        ]

    def test_memory_replies(self):
        topology = _topology()
        model = UniformRandomTraffic(
            topology, 0.1, memory_access_fraction=1.0, memory_replies=True, seed=1
        )
        request = next(iter(model.generate(0)), None) or next(iter(model.generate(1)))

        class _FakePacket:
            src_endpoint = request.src_endpoint
            dst_endpoint = request.dst_endpoint
            is_memory_access = True
            is_reply = False

        replies = list(model.on_packet_delivered(_FakePacket(), cycle=10))
        assert len(replies) == 1
        assert replies[0].src_endpoint == request.dst_endpoint

    def test_offchip_fraction_matches_paper_proportions(self):
        """20 % memory access on 4 chips gives roughly 80 % off-chip traffic."""
        system = build_multichip_base(4, 16, 4)
        model = UniformRandomTraffic(
            system.graph, injection_rate=0.05, memory_access_fraction=0.2, seed=2
        )
        requests = _collect(model, 300)
        fraction = offchip_fraction(system.graph, requests)
        assert 0.70 <= fraction <= 0.90

    def test_single_chip_offchip_fraction_is_memory_only(self):
        system = build_multichip_base(1, 64, 4)
        model = UniformRandomTraffic(
            system.graph, injection_rate=0.05, memory_access_fraction=0.2, seed=2
        )
        requests = _collect(model, 200)
        fraction = offchip_fraction(system.graph, requests)
        assert 0.12 <= fraction <= 0.30


class TestSyntheticPatterns:
    def test_hotspot_targets_hotspots(self):
        topology = _topology()
        hotspot = topology.cores[0].endpoint_id
        model = HotspotTraffic(topology, 0.2, [hotspot], hotspot_fraction=0.8, seed=1)
        requests = _collect(model, 300)
        to_hotspot = sum(1 for r in requests if r.dst_endpoint == hotspot)
        assert to_hotspot / len(requests) > 0.5

    def test_permutation_patterns_are_fixed(self):
        topology = _topology()
        for cls in (TransposeTraffic, BitComplementTraffic, NeighbourTraffic):
            model = cls(topology, injection_rate=0.2, seed=1)
            requests = _collect(model, 100)
            assert requests, cls.__name__
            destinations = {r.src_endpoint: r.dst_endpoint for r in requests}
            # Each source always sends to the same destination.
            for request in requests:
                assert destinations[request.src_endpoint] == request.dst_endpoint

    def test_hotspot_validation(self):
        topology = _topology()
        with pytest.raises(ValueError):
            HotspotTraffic(topology, 0.1, [])
        with pytest.raises(ValueError):
            HotspotTraffic(topology, 0.1, [999999])


class TestApplicationProfiles:
    def test_builtin_profiles_cover_both_suites(self):
        assert profiles_for_suite("PARSEC")
        assert profiles_for_suite("SPLASH-2")
        assert len(APPLICATION_PROFILES) >= 9

    def test_default_set_is_known(self):
        for name in default_application_set():
            assert name in APPLICATION_PROFILES

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_memory_bound_apps_have_higher_memory_fraction(self):
        assert get_profile("canneal").memory_fraction > get_profile("blackscholes").memory_fraction
        assert get_profile("radix").memory_fraction > get_profile("water").memory_fraction


class TestSynfullTraffic:
    def test_generates_coherence_and_memory_traffic(self):
        topology = _topology()
        model = SynfullApplicationTraffic.from_name(topology, "canneal", seed=3)
        requests = _collect(model, 800)
        assert requests
        assert any(r.is_memory_access for r in requests)
        assert any(not r.is_memory_access for r in requests)

    def test_memory_reads_get_replies(self):
        topology = _topology()
        model = SynfullApplicationTraffic.from_name(topology, "radix", seed=3)

        class _FakePacket:
            src_endpoint = topology.cores[0].endpoint_id
            dst_endpoint = topology.memory_vaults[0].endpoint_id
            traffic_class = "memory_read"
            is_reply = False

        replies = list(model.on_packet_delivered(_FakePacket(), 5))
        assert len(replies) == 1
        assert replies[0].is_reply
        assert replies[0].length_flits == model.profile.data_length_flits

    def test_reset_reproducibility(self):
        topology = _topology()
        model = SynfullApplicationTraffic.from_name(topology, "fft", seed=9)
        first = [(r.src_endpoint, r.dst_endpoint) for r in _collect(model, 300)]
        model.reset()
        second = [(r.src_endpoint, r.dst_endpoint) for r in _collect(model, 300)]
        assert first == second

    def test_rate_scale_scales_traffic(self):
        topology = _topology()
        light = _collect(
            SynfullApplicationTraffic.from_name(topology, "canneal", rate_scale=0.5, seed=3),
            600,
        )
        heavy = _collect(
            SynfullApplicationTraffic.from_name(topology, "canneal", rate_scale=2.0, seed=3),
            600,
        )
        assert len(heavy) > len(light)

    def test_requires_memory_stacks(self):
        system = build_multichip_base(2, 8, 0)
        model = SynfullApplicationTraffic.from_name(system.graph, "lu", seed=1)
        requests = _collect(model, 100)
        # Without stacks everything must be coherence traffic.
        assert all(not r.is_memory_access for r in requests)
