"""Tests for the traffic-pattern and architecture registries."""

from __future__ import annotations

import pytest

from repro.core.architectures import (
    UnknownArchitectureError,
    architecture_builder,
    available_architectures,
    build_system,
    register_architecture,
)
from repro.core.config import Architecture
from repro.testing import small_system_config
from repro.traffic.base import TrafficModel
from repro.traffic.registry import (
    UnknownPatternError,
    available_patterns,
    create_pattern,
    pattern_spec,
    register_pattern,
)
from repro.traffic.synthetic import (
    BitReversalTraffic,
    BurstyHotspotTraffic,
    default_hotspots,
)


@pytest.fixture(scope="module")
def topology():
    return build_system(small_system_config(Architecture.INTERPOSER)).topology


def collect_requests(traffic, cycles):
    requests = []
    for cycle in range(cycles):
        requests.extend(traffic.generate(cycle))
    return requests


class TestPatternRegistry:
    def test_expected_builtins_registered(self):
        patterns = available_patterns()
        for name in (
            "uniform",
            "transpose",
            "bit-complement",
            "bit-reversal",
            "neighbour",
            "hotspot",
            "bursty-hotspot",
        ):
            assert name in patterns

    def test_unknown_pattern_raises_with_known_names(self, topology):
        with pytest.raises(UnknownPatternError, match="bogus"):
            create_pattern("bogus", topology, injection_rate=0.01)
        with pytest.raises(UnknownPatternError, match="transpose"):
            pattern_spec("bogus")

    def test_every_pattern_constructs_a_traffic_model(self, topology):
        for name in available_patterns():
            traffic = create_pattern(
                name, topology, injection_rate=0.02, seed=1
            )
            assert isinstance(traffic, TrafficModel)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pattern("uniform")(lambda topology, **kwargs: None)

    def test_uniform_spec_uses_memory_fraction(self):
        assert pattern_spec("uniform").uses_memory_fraction
        assert not pattern_spec("transpose").uses_memory_fraction


class TestPatternDistributions:
    def test_transpose_is_a_fixed_permutation(self, topology):
        traffic = create_pattern("transpose", topology, injection_rate=1.0, seed=2)
        cores = traffic.cores
        expected = {
            core: traffic.destination_of(index) for index, core in enumerate(cores)
        }
        for request in collect_requests(traffic, 50):
            assert request.dst_endpoint == expected[request.src_endpoint]

    def test_bit_reversal_permutation_on_power_of_two(self, topology):
        traffic = BitReversalTraffic(topology, injection_rate=1.0, seed=2)
        cores = traffic.cores
        count = len(cores)
        assert count & (count - 1) == 0  # the small system has 8 cores
        bits = count.bit_length() - 1
        for index, core in enumerate(cores):
            reversed_index = int(f"{index:0{bits}b}"[::-1], 2)
            assert traffic.destination_of(index) == cores[reversed_index]
        # A permutation: every destination is hit exactly once.
        destinations = {traffic.destination_of(i) for i in range(count)}
        assert destinations == set(cores)

    def test_bit_complement_reverses_indices(self, topology):
        traffic = create_pattern(
            "bit-complement", topology, injection_rate=1.0, seed=2
        )
        cores = traffic.cores
        for index in range(len(cores)):
            assert traffic.destination_of(index) == cores[len(cores) - 1 - index]

    def test_uniform_respects_memory_fraction(self, topology):
        traffic = create_pattern(
            "uniform",
            topology,
            injection_rate=1.0,
            memory_access_fraction=0.5,
            seed=3,
        )
        requests = collect_requests(traffic, 200)
        memory_share = sum(r.is_memory_access for r in requests) / len(requests)
        assert 0.4 < memory_share < 0.6

    def test_bursty_hotspot_concentrates_during_bursts(self, topology):
        traffic = BurstyHotspotTraffic(
            topology,
            injection_rate=0.2,
            hotspot_fraction=0.8,
            burst_period_cycles=100,
            burst_duty=0.3,
            burst_scale=4.0,
            seed=4,
        )
        hotspots = set(default_hotspots(topology))
        burst_requests, quiet_requests = [], []
        for cycle in range(1000):
            bucket = burst_requests if traffic.in_burst(cycle) else quiet_requests
            bucket.extend(traffic.generate(cycle))
        assert burst_requests and quiet_requests
        # Bursts inject at several times the background rate...
        burst_cycles = sum(traffic.in_burst(c) for c in range(1000))
        burst_rate = len(burst_requests) / burst_cycles
        quiet_rate = len(quiet_requests) / (1000 - burst_cycles)
        assert burst_rate > 2 * quiet_rate
        # ...and concentrate traffic on the hotspot endpoints.
        burst_hotspot_share = sum(
            r.dst_endpoint in hotspots for r in burst_requests
        ) / len(burst_requests)
        quiet_hotspot_share = sum(
            r.dst_endpoint in hotspots for r in quiet_requests
        ) / len(quiet_requests)
        assert burst_hotspot_share > 0.5
        assert burst_hotspot_share > quiet_hotspot_share + 0.2

    def test_bursty_hotspot_phase_token_tracks_windows(self, topology):
        traffic = BurstyHotspotTraffic(
            topology, injection_rate=0.1, burst_period_cycles=50, seed=1
        )
        list(traffic.generate(0))
        first = traffic.phase_token()
        list(traffic.generate(60))
        second = traffic.phase_token()
        assert first != second
        traffic.reset()
        assert traffic.phase_token() == first


class TestArchitectureRegistry:
    def test_builtin_architectures_registered(self):
        names = available_architectures()
        for architecture in Architecture:
            assert architecture.value in names

    def test_unknown_architecture_raises_with_known_names(self):
        with pytest.raises(UnknownArchitectureError, match="wireless"):
            architecture_builder("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_architecture(Architecture.WIRELESS.value)(
                lambda multichip, config: None
            )

    def test_build_system_goes_through_registry(self):
        """Each architecture's overlay still yields its signature links."""
        for architecture in Architecture:
            system = build_system(small_system_config(architecture))
            inventory = system.link_inventory()
            if architecture is Architecture.WIRELESS:
                assert inventory.get("wireless", 0) > 0
            else:
                assert inventory.get("wireless", 0) == 0
