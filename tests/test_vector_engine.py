"""Engine-parity and SoA-storage tests for the NumPy vector fast path.

The vector engine (:mod:`repro.noc.vector`) is an alternative execution
path, not an alternative simulator: every run must be bit-identical to
the scalar reference loop.  The matrix here pins that guarantee across
all four architectures and four workload variants (uniform, SynFull
application, token-MAC wireless, faulted), including the configurations
where the vector engine deliberately falls back to the scalar phases
(wireless fabrics, fault plans).

A Hypothesis property test additionally pins the :class:`PacketPool`
NumPy backend: under arbitrary interleavings of allocation, recycling
and growth, the array-backed records must agree with the list backend
and with the values recorded at allocation time — growth reallocates the
arrays, so any stale-view bug shows up as a record mismatch here.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.noc.vector as vector_module
from repro.core.architectures import build_system
from repro.faults.scenarios import create_fault_plan
from repro.noc.engine import ENGINES, METRICS_MODES, SimulationConfig, Simulator
from repro.noc.pool import PacketPool

from test_kernel import (
    ARCHITECTURES,
    result_fingerprint,
    synfull_factory,
    uniform_factory,
)

CYCLES = 360


def run_with_engine(
    config,
    traffic_factory,
    engine,
    cycles=CYCLES,
    faults=None,
    fault_seed=7,  # non-empty random-links plan on every test system
    metrics="sampled",
):
    system = build_system(config)
    traffic = traffic_factory(system)
    fault_plan = None
    if faults is not None:
        fault_plan = create_fault_plan(
            faults,
            system.topology,
            fault_rate=0.15,
            seed=fault_seed,
            cycles=cycles,
        )
    simulator = Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=config.network,
        simulation_config=SimulationConfig(
            cycles=cycles,
            warmup_cycles=cycles // 4,
            engine=engine,
            metrics=metrics,
        ),
        fault_plan=fault_plan,
    )
    return simulator.run()


#: Workload variants of the parity matrix.  ``mac`` rewrites the wireless
#: protocol (inert on wired architectures, exactly as in production runs);
#: ``faults`` applies a deterministic fault plan, which makes the vector
#: engine fall back to the scalar phases — the parity claim still holds.
VARIANTS = {
    "uniform": {},
    "synfull": {"synfull": True},
    "token-mac": {"mac": "token"},
    "faulted": {"faults": "random-links"},
}


class TestEngineParity:
    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_fingerprints_bit_identical(self, arch, variant):
        options = VARIANTS[variant]
        config = ARCHITECTURES[arch]()
        if options.get("mac"):
            config = config.with_wireless(mac=options["mac"])
        factory = synfull_factory() if options.get("synfull") else uniform_factory()
        faults = options.get("faults")
        scalar = run_with_engine(config, factory, "scalar", faults=faults)
        vector = run_with_engine(config, factory, "vector", faults=faults)
        assert result_fingerprint(scalar) == result_fingerprint(vector)

    def test_engine_names_are_exported(self):
        assert set(ENGINES) == {"scalar", "vector"}
        assert set(METRICS_MODES) == {"sampled", "streaming"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SimulationConfig(engine="warp")


class TestVectorGating:
    """The fast path runs exactly when the configuration is wired and
    fault-free; everything else transparently falls back to scalar."""

    @pytest.fixture
    def vector_state_calls(self, monkeypatch):
        calls = []
        original = vector_module.VectorKernelState

        def recording(**kwargs):
            calls.append(kwargs["config"].engine)
            return original(**kwargs)

        monkeypatch.setattr(vector_module, "VectorKernelState", recording)
        return calls

    def test_wired_fault_free_uses_vector_state(self, vector_state_calls):
        config = ARCHITECTURES["mesh"]()
        run_with_engine(config, uniform_factory(), "vector", cycles=120)
        assert vector_state_calls == ["vector"]

    def test_scalar_engine_never_builds_vector_state(self, vector_state_calls):
        config = ARCHITECTURES["mesh"]()
        run_with_engine(config, uniform_factory(), "scalar", cycles=120)
        assert vector_state_calls == []

    def test_wireless_falls_back_to_scalar(self, vector_state_calls):
        config = ARCHITECTURES["wireless"]()
        run_with_engine(config, uniform_factory(), "vector", cycles=120)
        assert vector_state_calls == []

    def test_faulted_falls_back_to_scalar(self, vector_state_calls):
        config = ARCHITECTURES["mesh"]()
        run_with_engine(
            config, uniform_factory(), "vector", cycles=120, faults="random-links"
        )
        assert vector_state_calls == []


# ----------------------------------------------------------------------
# PacketPool array backend under grow/recycle.
# ----------------------------------------------------------------------

#: One pool operation: ``("alloc", length)`` or ``("free", which)`` where
#: ``which`` picks a live handle (modulo the live count, oldest first).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=5)),
    ),
    min_size=1,
    max_size=600,
)


def _apply_ops(pool, ops):
    """Run one op sequence; returns {handle: expected record dict}."""
    live = []
    expected = {}
    pid = 0
    for op, value in ops:
        if op == "alloc":
            pid += 1
            handle = pool.alloc(
                pid=pid,
                src_endpoint=pid % 7,
                dst_endpoint=(pid + 3) % 7,
                src_switch=1,
                dst_switch=2,
                length_flits=value,
                generation_cycle=pid * 2,
                route=[1, 2],
                is_memory_access=bool(pid % 2),
                is_reply=bool(pid % 3 == 0),
                measured=bool(pid % 5),
                traffic_class="request",
            )
            live.append(handle)
            expected[handle] = {
                "packet_id": pid,
                "src_endpoint": pid % 7,
                "dst_endpoint": (pid + 3) % 7,
                "length_flits": value,
                "generation_cycle": pid * 2,
                "is_memory_access": bool(pid % 2),
                "is_reply": bool(pid % 3 == 0),
                "measured": bool(pid % 5),
            }
        elif live:
            handle = live.pop(value % len(live))
            pool.free(handle)
            del expected[handle]
    return expected


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_pool_numpy_records_survive_grow_and_recycle(ops):
    """Array-backed records match their allocation-time values and the
    list backend, at every pool size the op sequence reaches."""
    numpy_pool = PacketPool(backend="numpy")
    list_pool = PacketPool(backend="list")
    expected = _apply_ops(numpy_pool, ops)
    expected_list = _apply_ops(list_pool, ops)

    # Identical op sequences must produce identical handle bookkeeping in
    # both backends (same grow chunks, same LIFO recycling).
    assert expected == expected_list
    assert numpy_pool.capacity == list_pool.capacity
    assert numpy_pool.free_list == list_pool.free_list
    assert numpy_pool.allocated_total == list_pool.allocated_total
    assert numpy_pool.freed_total == list_pool.freed_total
    assert numpy_pool.live_count == len(expected)

    # Every live record still reads back exactly as allocated — through
    # the PacketView boundary (which must hand back builtin scalars, not
    # NumPy ones) — even though growth reallocated the arrays.
    for handle, record in expected.items():
        view = numpy_pool.view(handle)
        for field_name, value in record.items():
            read = getattr(view, field_name)
            assert read == value
            assert type(read) is type(value)
        assert view.route == [1, 2]
        assert view.injection_cycle is None
        assert view.ejection_cycle is None


@settings(max_examples=25, deadline=None)
@given(ops=_OPS)
def test_pool_conservation_invariant(ops):
    pool = PacketPool(backend="numpy")
    expected = _apply_ops(pool, ops)
    assert pool.allocated_total == pool.freed_total + pool.live_count
    assert sorted(pool.live_handles()) == sorted(expected)


# ----------------------------------------------------------------------
# Streaming metrics mode.
# ----------------------------------------------------------------------


class TestStreamingMetrics:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_streaming_matches_sampled_aggregates(self, engine):
        config = ARCHITECTURES["mesh"]()
        sampled = run_with_engine(config, uniform_factory(), engine)
        streaming = run_with_engine(
            config, uniform_factory(), engine, metrics="streaming"
        )
        # Simulated behaviour is identical; only the sample storage differs.
        assert streaming.packets_delivered == sampled.packets_delivered
        assert streaming.flits_injected == sampled.flits_injected
        assert streaming.energy.as_dict() == sampled.energy.as_dict()
        assert streaming.latencies_cycles == []
        assert streaming.packet_energies_pj == []
        assert len(sampled.latencies_cycles) == streaming.latency_stream.count
        assert math.isclose(
            streaming.average_packet_latency_cycles(),
            sampled.average_packet_latency_cycles(),
            rel_tol=1e-12,
        )
        assert streaming.max_latency_cycles() == sampled.max_latency_cycles()
        assert math.isclose(
            streaming.average_packet_energy_pj(),
            sampled.average_packet_energy_pj(),
            rel_tol=1e-9,
        )

    def test_streaming_percentiles_are_tracked_only(self):
        config = ARCHITECTURES["mesh"]()
        streaming = run_with_engine(
            config, uniform_factory(), "scalar", cycles=200, metrics="streaming"
        )
        # Tracked percentiles answer (an estimate); untracked ones raise.
        assert streaming.latency_percentile_cycles(95.0) >= 0.0
        with pytest.raises(ValueError, match="track only"):
            streaming.latency_percentile_cycles(42.0)
