"""Tests of the wireless physical layer models."""

import pytest

from repro.wireless import (
    LinkBudget,
    Transceiver,
    TransceiverSpec,
    TransceiverState,
    ZigZagAntenna,
    assign_channels,
)


class TestAntenna:
    def test_wavelength_at_60ghz(self):
        antenna = ZigZagAntenna()
        assert antenna.wavelength_mm == pytest.approx(5.0, rel=0.01)

    def test_zigzag_is_compact_and_omnidirectional(self):
        antenna = ZigZagAntenna()
        assert antenna.axial_length_mm < antenna.wavelength_mm / 4
        assert not antenna.is_directional

    def test_supports_16gbps_ook(self):
        antenna = ZigZagAntenna()
        assert antenna.supports_data_rate(16.0)
        assert not antenna.supports_data_rate(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZigZagAntenna(carrier_frequency_hz=0)


class TestLinkBudget:
    def test_link_closes_at_package_scale(self):
        """A 60 GHz OOK link must close at multichip package distances."""
        budget = LinkBudget()
        assert budget.closes(50.0, data_rate_gbps=16.0, target_ber=1e-15)

    def test_ber_degrades_with_distance(self):
        budget = LinkBudget()
        assert budget.bit_error_rate(10.0, 16.0) < budget.bit_error_rate(200.0, 16.0)

    def test_path_loss_monotonic(self):
        budget = LinkBudget()
        assert budget.path_loss_db(10.0) < budget.path_loss_db(100.0)

    def test_max_distance_beyond_package(self):
        budget = LinkBudget()
        assert budget.max_distance_mm(16.0) > 60.0

    def test_invalid_inputs(self):
        budget = LinkBudget()
        with pytest.raises(ValueError):
            budget.path_loss_db(0.0)
        with pytest.raises(ValueError):
            budget.noise_power_dbm(0.0)


class TestTransceiver:
    def test_spec_energy_and_time(self):
        spec = TransceiverSpec()
        assert spec.transfer_energy_pj(32) == pytest.approx(2.3 * 32)
        assert spec.transfer_time_s(16) == pytest.approx(1e-9)

    def test_power_gating_controls_sleep(self):
        gated = Transceiver(wi_id=0, power_gating=True)
        gated.set_state(TransceiverState.SLEEPING)
        assert gated.state == TransceiverState.SLEEPING
        always_on = Transceiver(wi_id=1, power_gating=False)
        always_on.set_state(TransceiverState.SLEEPING)
        assert always_on.state == TransceiverState.IDLE

    def test_static_energy_lower_when_sleeping(self):
        asleep = Transceiver(wi_id=0, power_gating=True)
        asleep.set_state(TransceiverState.SLEEPING)
        asleep.tick(1000)
        awake = Transceiver(wi_id=1, power_gating=True)
        awake.set_state(TransceiverState.IDLE)
        awake.tick(1000)
        assert asleep.static_energy_pj() < awake.static_energy_pj()

    def test_sleep_fraction(self):
        transceiver = Transceiver(wi_id=0, power_gating=True)
        transceiver.set_state(TransceiverState.SLEEPING)
        transceiver.tick(30)
        transceiver.set_state(TransceiverState.IDLE)
        transceiver.tick(70)
        assert transceiver.sleep_fraction() == pytest.approx(0.3)

    def test_record_transfer_accumulates(self):
        transceiver = Transceiver(wi_id=0)
        transceiver.record_transfer(32)
        transceiver.record_transfer(32)
        assert transceiver.dynamic_energy_pj == pytest.approx(2 * 2.3 * 32)


class TestChannelAssignment:
    def test_round_robin_assignment(self):
        plans = assign_channels([1, 2, 3, 4, 5], num_channels=2)
        assert len(plans) == 2
        assert plans[0].wi_switch_ids == (1, 3, 5)
        assert plans[1].wi_switch_ids == (2, 4)

    def test_every_wi_gets_exactly_one_channel(self):
        wis = list(range(10, 22))
        plans = assign_channels(wis, num_channels=5)
        assigned = [wi for plan in plans for wi in plan.wi_switch_ids]
        assert sorted(assigned) == sorted(wis)

    def test_channel_frequencies_distinct(self):
        plans = assign_channels([1, 2, 3], num_channels=3)
        centres = {plan.centre_frequency_hz for plan in plans}
        assert len(centres) == 3

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            assign_channels([1, 2], 0)
