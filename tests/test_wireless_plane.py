"""Wireless data-plane tests: MAC registry, hot-path parity, channel energy.

The PR-5 contracts:

* **Registry** — every shipped protocol is constructible by name, unknown
  names fail loudly at configuration time, and the registry metadata
  (whole-packet buffering) drives the WI buffer sizing.
* **Wrapper parity** — for every registered MAC, a simulation whose
  protocol instances read pending traffic through the deprecated object
  spellings (``repro.testing.legacy``: the hot scan materialised into
  ``PendingTransmission`` dataclasses and bridged back by
  ``LegacyAdapterBridge``) is bit-identical to the handle-based hot path
  (``scan_pending`` on pool arrays), across channel counts.
* **Grant exclusivity** — property-tested: per wireless channel, at most
  one WI transmits in any cycle, for every MAC, seed and load.
* **Per-channel energy** — the per-channel attribution sums exactly to the
  aggregate :class:`EnergyBreakdown` shares, and the fig8 study's
  reconciliation helper agrees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import build_system
from repro.core.config import Architecture
from repro.noc.config import NetworkConfig, WirelessConfig
from repro.noc.engine import SimulationConfig, Simulator
from repro.testing import small_system_config
from repro.traffic.registry import create_pattern
from repro.testing.legacy import LegacyAdapterBridge
from repro.wireless.mac import (
    MacDataPlane,
    available_macs,
    mac_spec,
    register_mac,
)
from repro.wireless.mac.registry import UnknownMacError

ALL_MACS = ("control_packet", "fdma", "tdma", "token")


def _build_simulator(mac, channels, rate=0.08, seed=11, cycles=500):
    config = small_system_config(Architecture.WIRELESS, mac=mac).with_wireless(
        num_channels=channels
    )
    system = build_system(config)
    traffic = create_pattern(
        "uniform",
        system.topology,
        injection_rate=rate,
        memory_access_fraction=0.25,
        seed=seed,
    )
    return Simulator(
        topology=system.topology,
        router=system.router,
        traffic=traffic,
        network_config=config.network,
        simulation_config=SimulationConfig(cycles=cycles, warmup_cycles=cycles // 4),
    )


def _run_instrumented(simulator, instrument):
    """Run a simulator through the kernel, letting ``instrument(network)``
    rewire the wireless fabric between network construction and the run.

    Mirrors ``Simulator.run`` (same accounting, same finalize sequence) so
    the produced :class:`SimulationResult` is comparable bit for bit.
    """
    from repro.energy import EnergyAccountant
    from repro.noc.kernel import SimulationKernel
    from repro.noc.network import Network
    from repro.noc.stats import SimulationResult

    config = simulator.simulation_config
    net_config = simulator.network_config
    simulator.traffic.reset()
    network = Network(simulator.topology, net_config)
    accountant = EnergyAccountant(
        technology=net_config.technology,
        include_static=net_config.include_static_energy,
    )
    for fabric in network.fabrics:
        fabric.bind_accountant(accountant)
    instrument(network)
    result = SimulationResult(
        cycles=config.cycles,
        warmup_cycles=config.warmup_cycles,
        num_cores=len(simulator.topology.cores),
        flit_width_bits=net_config.technology.flit_width_bits,
        clock_frequency_hz=net_config.technology.clock_frequency_hz,
        nominal_packet_length_flits=net_config.packet_length_flits,
        include_static_energy=net_config.include_static_energy,
    )
    kernel = SimulationKernel(
        network=network,
        router=simulator.router,
        traffic=simulator.traffic,
        accountant=accountant,
        result=result,
        config=config,
        net_config=net_config,
    )
    state = kernel.run()
    accountant.record_static(
        cycles=state.cycle + 1,
        total_switch_static_mw=network.total_switch_static_power_mw,
    )
    for fabric in network.fabrics:
        fabric.finalize(result, accountant)
    result.energy = accountant.breakdown
    result.stalled = state.stalled
    return result


def _bridge_all_macs(network):
    """Swap every MAC's hot plane for the legacy object-wrapper bridge."""
    fabric = network.wireless_fabric
    assert fabric is not None
    for mac_instance in fabric.macs:
        assert isinstance(mac_instance.plane, MacDataPlane)
        mac_instance.plane = LegacyAdapterBridge(fabric)


def _fingerprint(result):
    """Everything that must match between the hot and the wrapper path."""
    return {
        "packets_generated": result.packets_generated,
        "packets_delivered": result.packets_delivered,
        "flits_injected": result.flits_injected,
        "flit_hops": result.flit_hops,
        "wireless_flit_hops": result.wireless_flit_hops,
        "latencies": tuple(result.latencies_cycles),
        "packet_energies": tuple(result.packet_energies_pj),
        "energy": result.energy.as_dict(),
        "mac_statistics": result.mac_statistics,
        "sleep_fraction": result.transceiver_sleep_fraction,
        "stalled": result.stalled,
    }


class TestMacRegistry:
    def test_all_shipped_macs_registered(self):
        assert set(ALL_MACS) <= set(available_macs())

    def test_spec_metadata(self):
        assert mac_spec("token").whole_packet_buffering
        assert not mac_spec("control_packet").whole_packet_buffering
        assert mac_spec("control_packet").supports_sleepy_receivers
        assert not mac_spec("tdma").supports_sleepy_receivers

    def test_unknown_mac_rejected(self):
        with pytest.raises(UnknownMacError):
            mac_spec("aloha")
        with pytest.raises(ValueError):
            WirelessConfig(mac="aloha")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mac("token")(lambda context: None)

    def test_wi_buffer_depth_follows_registry_metadata(self):
        token = NetworkConfig(packet_length_flits=64, wireless=WirelessConfig(mac="token"))
        for mac in ("control_packet", "tdma", "fdma"):
            partial = NetworkConfig(
                packet_length_flits=64, wireless=WirelessConfig(mac=mac)
            )
            assert partial.wi_buffer_depth == 2 * partial.buffer_depth_flits
            assert partial.wi_buffer_depth < token.wi_buffer_depth

    def test_tdma_knobs_validated(self):
        with pytest.raises(ValueError):
            WirelessConfig(tdma_slot_cycles=0)
        with pytest.raises(ValueError):
            WirelessConfig(tdma_guard_cycles=-1)
        # Jointly inconsistent knobs fail at configuration time, not at
        # fabric construction deep inside a simulation build.
        with pytest.raises(ValueError, match="guard"):
            WirelessConfig(mac="tdma", tdma_slot_cycles=1, tdma_guard_cycles=1)
        with pytest.raises(ValueError, match="derived"):
            NetworkConfig(
                packet_length_flits=1,
                wireless=WirelessConfig(mac="tdma", tdma_guard_cycles=1),
            )


class TestWrapperParity:
    """Legacy object wrappers vs the handle-based hot path, bit for bit."""

    @pytest.mark.parametrize("mac", ALL_MACS)
    @pytest.mark.parametrize("channels", (1, 2))
    def test_legacy_bridge_matches_hot_path(self, mac, channels):
        hot = _build_simulator(mac, channels).run()
        # Re-run with every MAC instance reading pending traffic through
        # the deprecated object spelling: the bridge materialises the hot
        # scan into PendingTransmission dataclasses and converts them back
        # into scratch-array rows.  Outcomes must be bit-identical.
        bridged = _run_instrumented(
            _build_simulator(mac, channels), _bridge_all_macs
        )
        assert _fingerprint(hot) == _fingerprint(bridged)


class TestGrantExclusivity:
    """Per channel, at most one WI puts a flit on the air in any cycle."""

    @settings(max_examples=12, deadline=None)
    @given(
        mac=st.sampled_from(ALL_MACS),
        channels=st.sampled_from([1, 2, 3]),
        rate=st.sampled_from([0.02, 0.1, 0.3]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_one_transmitter_per_channel_per_cycle(
        self, mac, channels, rate, seed
    ):
        simulator = _build_simulator(mac, channels, rate=rate, seed=seed, cycles=300)
        observed = {}  # (cycle, channel_id) -> set of transmitting WIs

        def install_probe(network):
            fabric = network.wireless_fabric
            assert fabric is not None
            original = fabric.notify_sent

            def probe(src, pid, dst, is_tail, cycle):
                channel = fabric._mac_of[src].channel_id
                observed.setdefault((cycle, channel), set()).add(src)
                original(src, pid, dst, is_tail, cycle)

            fabric.notify_sent = probe

        _run_instrumented(simulator, install_probe)
        overlaps = {
            key: senders for key, senders in observed.items() if len(senders) > 1
        }
        assert not overlaps, f"overlapping grants: {overlaps}"
        if rate >= 0.1:
            assert observed, "expected some wireless traffic at this load"


class TestChannelEnergyAttribution:
    @pytest.mark.parametrize("mac", ALL_MACS)
    def test_per_channel_energy_reconciles(self, mac):
        result = _build_simulator(mac, channels=3, rate=0.1).run()
        assert result.packets_delivered > 0
        breakdown = result.channel_energy_pj
        assert breakdown, "wireless run must publish a per-channel breakdown"
        assert sum(e["wireless_pj"] for e in breakdown.values()) == pytest.approx(
            result.energy.wireless_pj
        )
        assert sum(e["mac_control_pj"] for e in breakdown.values()) == pytest.approx(
            result.energy.mac_control_pj
        )
        assert sum(
            e["transceiver_static_pj"] for e in breakdown.values()
        ) == pytest.approx(result.energy.transceiver_static_pj)

    def test_fig8_reconciliation_helper_agrees(self):
        from repro.experiments.fig8_mac_study import _check_reconciliation
        from repro.metrics.saturation import LoadPointSummary

        result = _build_simulator("control_packet", channels=2, rate=0.1).run()
        point = LoadPointSummary.from_result(0.1, result)
        assert _check_reconciliation(point)
        broken = LoadPointSummary.from_dict(
            {**point.as_dict(), "wireless_energy_pj": point.wireless_energy_pj + 1.0}
        )
        assert not _check_reconciliation(broken)

    def test_wired_run_has_no_channel_breakdown(self):
        config = small_system_config(Architecture.INTERPOSER)
        system = build_system(config)
        traffic = create_pattern(
            "uniform",
            system.topology,
            injection_rate=0.05,
            memory_access_fraction=0.25,
            seed=2,
        )
        result = Simulator(
            topology=system.topology,
            router=system.router,
            traffic=traffic,
            network_config=config.network,
            simulation_config=SimulationConfig(cycles=300, warmup_cycles=50),
        ).run()
        assert result.channel_energy_pj == {}


class TestMacTaskThreading:
    def test_mac_override_changes_cache_key_and_label(self):
        from repro.experiments.runner import uniform_task

        class _Fidelity:
            cycles = 400
            warmup_cycles = 100
            seed = 3

        config = small_system_config(Architecture.WIRELESS)
        base = uniform_task(config, _Fidelity, load=0.01)
        pinned = uniform_task(config, _Fidelity, load=0.01, mac="token")
        assert base.cache_key() != pinned.cache_key()
        assert pinned.cache_key() != uniform_task(
            config, _Fidelity, load=0.01, mac="tdma"
        ).cache_key()
        assert "mac=token" in pinned.label
        assert pinned.effective_config().network.wireless.mac == "token"
        assert base.effective_config() is config

    def test_unknown_mac_rejected_at_task_construction(self):
        from repro.experiments.runner import uniform_task

        class _Fidelity:
            cycles = 400
            warmup_cycles = 100
            seed = 3

        with pytest.raises(KeyError):
            uniform_task(
                small_system_config(Architecture.WIRELESS),
                _Fidelity,
                load=0.01,
                mac="no-such-mac",
            )

    def test_fig8_study_loads_selection(self):
        from repro.experiments.fig8_mac_study import study_loads

        assert study_loads([0.1, 0.2]) == [0.1, 0.2]
        assert study_loads([0.4, 0.1, 0.2, 0.3, 0.5]) == [0.1, 0.3, 0.5]
